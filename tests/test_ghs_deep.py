"""Deeper GHS tests: staggered wake-ups, deferred-message paths, weight
determinism, and level growth."""

import pytest

from repro.errors import ProtocolError
from repro.graphs import (
    Graph,
    complete,
    gnp_connected,
    grid,
    path_graph,
    ring,
)
from repro.sim import ExponentialDelay, Network, TraceRecorder, UniformDelay
from repro.spanning import extract_tree, kruskal_mst, make_ghs_factory
from repro.spanning.ghs import GhsProcess


def _run_ghs(graph, *, start_times=None, delay=None, seed=0, trace=None):
    net = Network(
        graph,
        make_ghs_factory(graph),
        start_times=start_times,
        delay=delay,
        seed=seed,
        trace=trace,
    )
    report = net.run()
    return extract_tree(net, graph), report, net


class TestStaggeredStarts:
    def test_one_late_node(self):
        g = gnp_connected(14, 0.35, seed=1)
        tree, _report, _net = _run_ghs(g, start_times={g.nodes()[0]: 100.0})
        assert sorted(tree.edges()) == sorted(kruskal_mst(g).edges())

    def test_all_staggered(self):
        g = grid(3, 4)
        starts = {u: float(3 * i) for i, u in enumerate(g.nodes())}
        tree, _report, _net = _run_ghs(g, start_times=starts)
        assert sorted(tree.edges()) == sorted(kruskal_mst(g).edges())

    def test_staggered_with_random_delays(self):
        g = gnp_connected(12, 0.4, seed=3)
        starts = {u: float(u % 5) for u in g.nodes()}
        for seed in range(4):
            tree, _r, _n = _run_ghs(
                g, start_times=starts, delay=ExponentialDelay(), seed=seed
            )
            assert sorted(tree.edges()) == sorted(kruskal_mst(g).edges())


class TestDeferredPaths:
    def test_deferred_messages_exercised(self):
        """Under random delays on a dense graph, the Test-defer and
        Connect-defer branches fire; all deferred queues must drain."""
        g = complete(10)
        tree, _report, net = _run_ghs(g, delay=UniformDelay(), seed=5)
        for u in g.nodes():
            proc = net.node(u)
            assert isinstance(proc, GhsProcess)
            assert proc.deferred == []
            assert proc.halted
        assert tree.max_degree() >= 1

    def test_message_after_halt_rejected(self):
        g = path_graph(2)
        _tree, _report, net = _run_ghs(g)
        proc = net.node(0)
        from repro.spanning.ghs import Test

        with pytest.raises(ProtocolError):
            proc.on_message(1, Test(level=0, fragment=(1.0, 0, 1)))


class TestWeights:
    def test_tie_breaking_is_deterministic(self):
        """Uniform weights: the MST is the lexicographically smallest
        edge set, identical across delay models."""
        g = ring(9)
        expected = sorted(kruskal_mst(g).edges())
        for delay in (None, UniformDelay(), ExponentialDelay()):
            tree, _r, _n = _run_ghs(g, delay=delay, seed=7)
            assert sorted(tree.edges()) == expected

    def test_negative_weights_fine(self):
        g = ring(6)
        g.set_weight(0, 1, -5.0)
        g.set_weight(2, 3, -1.0)
        tree, _r, _n = _run_ghs(g)
        assert (0, 1) in tree.edges()
        assert sorted(tree.edges()) == sorted(kruskal_mst(g).edges())

    def test_distinct_given_weights(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
        for e, w in zip(g.edges(), (5.0, 1.0, 4.0, 2.0, 3.0)):
            g.set_weight(*e, w)
        tree, _r, _n = _run_ghs(g)
        assert sorted(tree.edges()) == sorted(kruskal_mst(g).edges())


class TestScaleAndShape:
    @pytest.mark.parametrize("n", [20, 32, 48])
    def test_message_growth_near_nlogn_plus_m(self, n):
        import math

        g = gnp_connected(n, 0.2, seed=n)
        _tree, report, _net = _run_ghs(g)
        bound = 5 * n * max(1, math.ceil(math.log2(n))) + 4 * g.m + 2 * n
        assert report.total_messages <= bound

    def test_trace_contains_protocol_phases(self):
        g = gnp_connected(12, 0.4, seed=9)
        tr = TraceRecorder(capacity=10**6)
        _tree, _report, _net = _run_ghs(g, trace=tr)
        names = {type(r.message).__name__ for r in tr.records if r.message}
        assert {"Connect", "Initiate", "Test", "Report", "GhsDone"} <= names
