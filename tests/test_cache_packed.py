"""Packed two-tier ResultCache: segment/index layout, batched lookups,
the LRU memory tier, corruption robustness (every mode is a warned miss,
never an exception), crash-safety ordering, and the legacy per-file
layout (read-through + migrate + interchangeability)."""

import json

import pytest

from repro.analysis import ResultCache, RunSpec, cache_key, run_single
from repro.analysis.cache import _encode_payload


def make_pairs(count, family="ring", n=8):
    """(spec, record) pairs for distinct seeds — records are real runs
    of the first seed re-stamped? No: each seed is actually run, so the
    cache round-trips genuine records."""
    pairs = []
    for seed in range(count):
        spec = RunSpec(family=family, n=n, seed=seed)
        pairs.append((spec, run_single(family, n, seed=seed)))
    return pairs


def write_legacy_entry(root, spec, record, *, key=None):
    """Write one entry in the pre-packed one-file-per-entry layout."""
    key = key or cache_key(spec)
    path = root / key[:2] / f"{key}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(_encode_payload(spec, record))
    return path


class TestPackedLayout:
    def test_put_many_writes_one_segment_and_an_index(self, tmp_path):
        cache = ResultCache(tmp_path)
        pairs = make_pairs(4)
        assert cache.put_many(pairs) == 4
        assert (tmp_path / "index.json").is_file()
        assert len(list((tmp_path / "segments").glob("seg-*.pack"))) == 1
        assert len(cache) == 4

    def test_get_many_preserves_order_and_marks_misses_in_place(self, tmp_path):
        cache = ResultCache(tmp_path)
        pairs = make_pairs(3)
        cache.put_many(pairs[:2])
        fresh = ResultCache(tmp_path)  # cold memory tier: disk answers
        specs = [pairs[2][0], pairs[0][0], pairs[1][0]]
        got = fresh.get_many(specs)
        assert got == [None, pairs[0][1], pairs[1][1]]
        assert fresh.hits == 2 and fresh.misses == 1

    def test_segments_roll_over_at_the_byte_threshold(self, tmp_path):
        cache = ResultCache(tmp_path, segment_bytes=1)  # every batch rolls
        for spec, record in make_pairs(3):
            cache.put(spec, record)
        assert len(list((tmp_path / "segments").glob("seg-*.pack"))) == 3
        assert all(r is not None for r in ResultCache(tmp_path).get_many(
            [spec for spec, _ in make_pairs(3)]
        ))

    def test_index_reloaded_when_another_writer_updates_it(self, tmp_path):
        reader = ResultCache(tmp_path)
        (spec, record), *_ = pairs = make_pairs(2)
        assert reader.get(spec) is None  # index loaded (empty) and cached
        writer = ResultCache(tmp_path)
        writer.put_many(pairs)
        assert reader.get(spec) == record  # stat stamp changed: re-read


class TestMemoryTier:
    def test_lru_never_exceeds_its_budget(self, tmp_path):
        cache = ResultCache(tmp_path, memory_entries=2)
        pairs = make_pairs(5)
        cache.put_many(pairs)
        assert len(cache._memory) <= 2
        assert all(r is not None for r in cache.get_many([s for s, _ in pairs]))
        assert len(cache._memory) <= 2

    def test_zero_budget_disables_the_tier(self, tmp_path):
        cache = ResultCache(tmp_path, memory_entries=0)
        pairs = make_pairs(2)
        cache.put_many(pairs)
        assert cache.get(pairs[0][0]) == pairs[0][1]  # served from disk
        assert len(cache._memory) == 0

    def test_memory_tier_answers_without_the_disk(self, tmp_path):
        cache = ResultCache(tmp_path)
        (spec, record), *_ = make_pairs(1)
        cache.put(spec, record)
        (tmp_path / "index.json").unlink()  # disk gone, memory still warm
        for seg in (tmp_path / "segments").glob("seg-*.pack"):
            seg.unlink()
        assert cache.get(spec) == record


class TestCorruptionIsAMiss:
    """Every corruption mode degrades to a warned miss — a damaged cache
    must never take a sweep down, and a re-put must heal it."""

    def make_cold(self, tmp_path, count=2):
        pairs = make_pairs(count)
        ResultCache(tmp_path).put_many(pairs)
        return pairs, ResultCache(tmp_path, memory_entries=0)

    def test_truncated_segment(self, tmp_path):
        pairs, cache = self.make_cold(tmp_path)
        (segment,) = (tmp_path / "segments").glob("seg-*.pack")
        blob = segment.read_bytes()
        segment.write_bytes(blob[: len(blob) // 2])  # tail entry cut off
        with pytest.warns(RuntimeWarning, match="treated as a miss"):
            got = cache.get_many([s for s, _ in pairs])
        assert None in got

    def test_missing_segment(self, tmp_path):
        pairs, cache = self.make_cold(tmp_path)
        (segment,) = (tmp_path / "segments").glob("seg-*.pack")
        segment.unlink()
        with pytest.warns(RuntimeWarning, match="missing segment"):
            assert cache.get_many([s for s, _ in pairs]) == [None, None]

    def test_undecodable_entry(self, tmp_path):
        pairs, cache = self.make_cold(tmp_path, count=1)
        (segment,) = (tmp_path / "segments").glob("seg-*.pack")
        segment.write_bytes(b"x" * segment.stat().st_size)  # same size, garbage
        with pytest.warns(RuntimeWarning, match="undecodable entry"):
            assert cache.get(pairs[0][0]) is None

    def test_unreadable_index(self, tmp_path):
        pairs, cache = self.make_cold(tmp_path)
        (tmp_path / "index.json").write_text("{ not json", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="unreadable index"):
            assert cache.get_many([s for s, _ in pairs]) == [None, None]

    def test_missing_index_is_a_plain_miss(self, tmp_path):
        # indistinguishable from a fresh cache: a miss, but not a warning
        pairs, cache = self.make_cold(tmp_path)
        (tmp_path / "index.json").unlink()
        assert cache.get(pairs[0][0]) is None

    def test_malformed_index_entry(self, tmp_path):
        pairs, cache = self.make_cold(tmp_path, count=1)
        index_path = tmp_path / "index.json"
        data = json.loads(index_path.read_text(encoding="utf-8"))
        (key,) = data["entries"]
        data["entries"][key] = ["seg-00000.pack", "zero", None]
        index_path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="malformed index entry"):
            assert cache.get(pairs[0][0]) is None

    def test_corruption_heals_on_re_put(self, tmp_path):
        pairs, cache = self.make_cold(tmp_path, count=1)
        (segment,) = (tmp_path / "segments").glob("seg-*.pack")
        segment.write_text("{ not json", encoding="utf-8")
        with pytest.warns(RuntimeWarning):
            assert cache.get(pairs[0][0]) is None
        cache.put_many(pairs)
        assert ResultCache(tmp_path).get(pairs[0][0]) == pairs[0][1]


class TestCrashSafety:
    def test_orphan_segment_bytes_never_poison_lookups(self, tmp_path):
        """A crash between segment append and index write leaves orphan
        bytes; they are invisible (unreferenced) and the next batch
        appends cleanly after them."""
        cache = ResultCache(tmp_path)
        pairs = make_pairs(3)
        cache.put_many(pairs[:1])
        (segment,) = (tmp_path / "segments").glob("seg-*.pack")
        with open(segment, "ab") as fh:
            fh.write(b'{"spec": "torn batch, index never written')
        fresh = ResultCache(tmp_path, memory_entries=0)
        assert fresh.get(pairs[0][0]) == pairs[0][1]
        assert fresh.get(pairs[1][0]) is None  # orphan is not served
        fresh.put_many(pairs[1:])
        assert fresh.get_many([s for s, _ in pairs]) == [r for _, r in pairs]

    def test_index_entries_always_point_inside_their_segment(self, tmp_path):
        cache = ResultCache(tmp_path, segment_bytes=256)
        cache.put_many(make_pairs(6))
        data = json.loads((tmp_path / "index.json").read_text(encoding="utf-8"))
        for segment, offset, length, _schema in data["entries"].values():
            size = (tmp_path / "segments" / segment).stat().st_size
            assert offset + length <= size


class TestMaintenance:
    def test_stats_counts_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        pairs = make_pairs(3)
        cache.put_many(pairs[:2])
        write_legacy_entry(tmp_path, *pairs[2])
        s = cache.stats()
        assert s["entries"] == 2
        assert s["segments"] == 1
        assert s["bytes"] > 0
        assert s["legacy_files"] == 1
        assert s["schema"] >= 5

    def test_verify_clean_store(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_many(make_pairs(3))
        assert cache.verify() == []

    def test_verify_reports_truncation_and_missing_segments(self, tmp_path):
        cache = ResultCache(tmp_path, segment_bytes=1)
        cache.put_many(make_pairs(1))
        cache.put_many(make_pairs(2)[1:])
        seg0, seg1 = sorted((tmp_path / "segments").glob("seg-*.pack"))
        seg0.write_bytes(seg0.read_bytes()[:10])
        seg1.unlink()
        problems = ResultCache(tmp_path).verify()
        assert len(problems) == 2
        assert any("truncated segment" in p for p in problems)
        assert any("is missing" in p for p in problems)

    def test_prune_drops_stale_schema_entries(self, tmp_path, monkeypatch):
        from repro.analysis import cache as cache_mod

        pairs = make_pairs(3)
        stale = ResultCache(tmp_path)
        monkeypatch.setattr(
            cache_mod, "CACHE_SCHEMA_VERSION", cache_mod.CACHE_SCHEMA_VERSION - 1
        )
        stale.put_many(pairs[:2])  # written under the previous schema
        monkeypatch.undo()
        current = ResultCache(tmp_path)
        current.put_many(pairs[2:])
        assert current.prune() == 2
        got = ResultCache(tmp_path).get_many([s for s, _ in pairs])
        assert got == [None, None, pairs[2][1]]
        assert current.prune() == 0  # idempotent


class TestLegacyLayout:
    def test_read_through_serves_legacy_entries(self, tmp_path):
        (spec, record), *_ = make_pairs(1)
        write_legacy_entry(tmp_path, spec, record)
        cache = ResultCache(tmp_path)
        assert cache.get(spec) == record
        assert len(cache) == 1

    def test_undecodable_legacy_entry_is_a_warned_miss(self, tmp_path):
        (spec, record), *_ = make_pairs(1)
        path = write_legacy_entry(tmp_path, spec, record)
        path.write_text("{ not json", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="undecodable legacy entry"):
            assert ResultCache(tmp_path).get(spec) is None

    def test_migrate_packs_deletes_and_stays_interchangeable(self, tmp_path):
        pairs = make_pairs(3)
        for spec, record in pairs:
            write_legacy_entry(tmp_path, spec, record)
        cache = ResultCache(tmp_path)
        before = cache.get_many([s for s, _ in pairs])
        assert cache.migrate() == 3
        assert not list(tmp_path.glob("??/*.json"))  # legacy files gone
        after = ResultCache(tmp_path).get_many([s for s, _ in pairs])
        assert after == before == [r for _, r in pairs]
        assert cache.verify() == []

    def test_migrate_tags_stale_keys_unknown_for_prune(self, tmp_path):
        (spec, record), *_ = make_pairs(1)
        # a legacy file whose name no current key can reproduce (written
        # under an older schema): migrated verbatim, never served, and
        # prune clears it
        write_legacy_entry(tmp_path, spec, record, key="ab" * 32)
        cache = ResultCache(tmp_path)
        assert cache.migrate() == 1
        assert cache.get(spec) is None
        assert cache.prune() == 1
        assert len(ResultCache(tmp_path)) == 0

    def test_migrate_skips_undecodable_files(self, tmp_path):
        pairs = make_pairs(2)
        write_legacy_entry(tmp_path, *pairs[0])
        bad = write_legacy_entry(tmp_path, *pairs[1])
        bad.write_text("{ not json", encoding="utf-8")
        cache = ResultCache(tmp_path)
        with pytest.warns(RuntimeWarning, match="skipping undecodable"):
            assert cache.migrate() == 1
        assert bad.exists()  # never deleted: the bytes are all there is
        assert ResultCache(tmp_path).get(pairs[0][0]) == pairs[0][1]

    def test_migrate_preserves_salted_stores(self, tmp_path):
        (spec, record), *_ = make_pairs(1)
        salted = ResultCache(tmp_path, salt="exploration-probe:1")
        key = cache_key(spec, salt="exploration-probe:1")
        write_legacy_entry(tmp_path, spec, record, key=key)
        assert salted.migrate() == 1
        assert ResultCache(tmp_path, salt="exploration-probe:1").get(spec) == record
        assert ResultCache(tmp_path).get(spec) is None

    def test_clear_removes_both_layouts(self, tmp_path):
        pairs = make_pairs(2)
        cache = ResultCache(tmp_path)
        cache.put_many(pairs[:1])
        write_legacy_entry(tmp_path, *pairs[1])
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(ResultCache(tmp_path)) == 0


class TestCorruptionDedupe:
    """Repeated identical corruption warnings collapse within one batch:
    a torn N-entry segment warns once plus a summary line, not N times."""

    def torn_store(self, tmp_path, count):
        pairs = make_pairs(count)
        ResultCache(tmp_path, memory_entries=0).put_many(pairs)
        (segment,) = (tmp_path / "segments").glob("seg-*.pack")
        segment.write_bytes(b"x" * segment.stat().st_size)
        return pairs, ResultCache(tmp_path, memory_entries=0)

    def test_torn_batch_warns_once_plus_summary(self, tmp_path):
        import warnings

        pairs, cache = self.torn_store(tmp_path, 6)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert cache.get_many([s for s, _ in pairs]) == [None] * 6
        messages = [str(w.message) for w in caught]
        assert len(messages) == 2
        assert "undecodable entry" in messages[0]
        assert "5 similar corruption warning(s) suppressed" in messages[1]

    def test_dedup_resets_between_batches(self, tmp_path):
        import warnings

        pairs, cache = self.torn_store(tmp_path, 2)
        for _ in range(2):  # each batch re-warns: dedup is per batch
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                assert cache.get_many([s for s, _ in pairs]) == [None, None]
            messages = [str(w.message) for w in caught]
            assert len(messages) == 2
            assert "undecodable entry" in messages[0]
            assert "1 similar corruption warning(s) suppressed" in messages[1]

    def test_distinct_corruption_modes_each_warn(self, tmp_path):
        import warnings

        pairs, cache = self.torn_store(tmp_path, 2)
        extra_spec = RunSpec(family="ring", n=8, seed=99)
        index_path = tmp_path / "index.json"
        data = json.loads(index_path.read_text(encoding="utf-8"))
        data["entries"][cache_key(extra_spec)] = ["seg-00000.pack", "zero", None]
        index_path.write_text(json.dumps(data), encoding="utf-8")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            got = cache.get_many([s for s, _ in pairs] + [extra_spec])
        assert got == [None] * 3
        messages = [str(w.message) for w in caught]
        assert any("malformed index entry" in m for m in messages)
        assert any("undecodable entry" in m for m in messages)
