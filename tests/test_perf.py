"""The perf subsystem: stats determinism, baseline round-trips,
compare/gate verdicts, suite-runner determinism, and the
``slow_event_loop`` mutation self-test."""

import json

import pytest

from repro._mutation import mutated
from repro.analysis.harness import SweepSpec
from repro.errors import AnalysisError
from repro.perf import (
    BASELINE_SCHEMA,
    Baseline,
    BenchResult,
    BenchSpec,
    bench_names,
    bootstrap_ci,
    compare_baselines,
    get_bench,
    iqr,
    latest_baseline_path,
    load_baseline,
    machine_fingerprint,
    median,
    quantile,
    register_bench,
    run_suite,
    save_baseline,
    suite_benches,
    time_callable,
    work_bytes,
)
from repro.perf.runner import aggregate_work
from repro.perf.timing import TimingSample


class TestStats:
    def test_median_and_quantiles(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.0) == 1.0
        assert quantile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0
        assert quantile([5.0], 0.75) == 5.0

    def test_iqr(self):
        assert iqr([1.0, 2.0, 3.0, 4.0, 5.0]) == pytest.approx(2.0)
        assert iqr([7.0]) == 0.0

    def test_quantile_validation(self):
        with pytest.raises(AnalysisError):
            quantile([], 0.5)
        with pytest.raises(AnalysisError):
            quantile([1.0], 1.5)

    def test_bootstrap_ci_is_deterministic_in_the_seed(self):
        values = [1.0, 1.2, 0.9, 1.4, 1.1, 1.05]
        a = bootstrap_ci(values, seed=7)
        b = bootstrap_ci(values, seed=7)
        c = bootstrap_ci(values, seed=8)
        assert a == b
        assert a != c  # a different stream resamples differently
        lo, hi = a
        assert lo <= median(values) <= hi

    def test_bootstrap_ci_single_value_degenerates(self):
        assert bootstrap_ci([2.5], seed=0) == (2.5, 2.5)

    def test_bootstrap_ci_validation(self):
        with pytest.raises(AnalysisError):
            bootstrap_ci([], seed=0)
        with pytest.raises(AnalysisError):
            bootstrap_ci([1.0, 2.0], resamples=0)
        with pytest.raises(AnalysisError):
            bootstrap_ci([1.0, 2.0], confidence=1.0)


class TestTiming:
    def test_warmup_plus_repeats_call_counts(self):
        calls = []

        def fn():
            calls.append(len(calls))
            return {"ops": 1}

        sample, results = time_callable(fn, repeats=3, warmup=2)
        assert len(calls) == 5
        assert sample.repeats == 3
        assert sample.warmup == 2
        assert len(results) == 5
        assert sample.best <= sample.median

    def test_validation(self):
        with pytest.raises(AnalysisError):
            time_callable(lambda: None, repeats=0)
        with pytest.raises(AnalysisError):
            time_callable(lambda: None, warmup=-1)
        with pytest.raises(AnalysisError):
            TimingSample(seconds=(), warmup=0)


class TestBenchSpecRegistry:
    def test_exactly_one_source(self):
        with pytest.raises(AnalysisError):
            BenchSpec(name="x", description="d")
        with pytest.raises(AnalysisError):
            BenchSpec(
                name="x", description="d",
                sweep=SweepSpec(), micro=lambda: (lambda: {"ops": 1}),
            )

    def test_suite_validation(self):
        with pytest.raises(AnalysisError):
            BenchSpec(name="x", description="d", suites=("nope",),
                      micro=lambda: (lambda: {"ops": 1}))
        with pytest.raises(AnalysisError):  # full is implicit
            BenchSpec(name="x", description="d", suites=("full",),
                      micro=lambda: (lambda: {"ops": 1}))

    def test_timing_knob_validation(self):
        kernel = lambda: (lambda: {"ops": 1})  # noqa: E731
        with pytest.raises(AnalysisError):
            BenchSpec(name="x", description="d", micro=kernel, repeats=0)
        with pytest.raises(AnalysisError):
            BenchSpec(name="x", description="d", micro=kernel, warmup=-1)
        with pytest.raises(AnalysisError):
            BenchSpec(name="bad name", description="d", micro=kernel)

    def test_builtin_registry_covers_the_migrated_benches(self):
        names = bench_names()
        for expected in (
            "t1_degree_quality", "t2_messages", "t3_time", "t4_rounds",
            "t5_lower_bound", "t6_initial_tree", "t7_message_size",
            "t8_vs_sequential", "t9_ablation", "executor_sweep",
            "campaign_tiny", "event_queue_ops", "policy_queue_ops",
            "echo_wave", "full_protocol",
        ):
            assert expected in names
        assert get_bench("echo_wave").kind == "micro"
        assert get_bench("t2_messages").kind == "sweep"
        assert get_bench("t2_messages").cells()  # sweeps lower to cells

    def test_suites_nest(self):
        smoke = {b.name for b in suite_benches("smoke")}
        full = {b.name for b in suite_benches("full")}
        assert smoke < full
        assert full == set(bench_names())
        with pytest.raises(AnalysisError):
            suite_benches("nightly")

    def test_register_rejects_duplicates(self, monkeypatch):
        from repro.perf import spec as spec_mod

        monkeypatch.setattr(spec_mod, "_BENCHES", dict(spec_mod._BENCHES))
        spec = BenchSpec(name="zz_dup", description="d",
                         micro=lambda: (lambda: {"ops": 1}))
        register_bench(spec)
        with pytest.raises(AnalysisError):
            register_bench(spec)
        register_bench(spec, replace=True)
        with pytest.raises(AnalysisError):
            get_bench("zz_missing")


def _result(name="b1", work=None, best=1.0, kind="micro"):
    return BenchResult(
        name=name,
        kind=kind,
        work=dict(work or {"events": 10, "messages": 5}),
        timing={
            "warmup": 1, "repeats": 3, "seconds": [best, best * 1.1, best * 1.2],
            "best": best, "median": best * 1.1, "iqr": best * 0.1,
            "ci90": [best, best * 1.2],
        },
        derived={"events_per_sec": 10 / best},
    )


def _baseline(results, machine=None, **kwargs):
    return Baseline(
        suite="smoke",
        results=tuple(results),
        machine=machine or machine_fingerprint(),
        **kwargs,
    )


class TestBaselineFiles:
    def test_round_trip(self, tmp_path):
        base = _baseline([_result()], git_rev="abc1234", notes="hello")
        path = save_baseline(base, tmp_path / "BENCH_0001.json")
        loaded = load_baseline(path)
        assert loaded == base
        assert loaded.schema == BASELINE_SCHEMA
        assert loaded.result("b1").work == {"events": 10, "messages": 5}
        assert loaded.result("nope") is None

    def test_work_section_excludes_timing_and_provenance(self):
        a = _baseline([_result(best=1.0)], git_rev="aaa")
        b = _baseline([_result(best=99.0)], git_rev="bbb", notes="different")
        assert work_bytes(a) == work_bytes(b)
        payload = json.loads(work_bytes(a))
        assert payload == {"b1": {"events": 10, "messages": 5}}

    def test_schema_mismatch_is_a_friendly_error(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        doc = _baseline([_result()]).to_json_dict()
        doc["schema"] = BASELINE_SCHEMA + 1
        path.write_text(json.dumps(doc))
        with pytest.raises(AnalysisError, match="schema"):
            load_baseline(path)

    def test_unreadable_and_missing_files(self, tmp_path):
        with pytest.raises(AnalysisError, match="no such baseline"):
            load_baseline(tmp_path / "gone.json")
        bad = tmp_path / "BENCH_corrupt.json"
        bad.write_text("{not json")
        with pytest.raises(AnalysisError, match="unreadable"):
            load_baseline(bad)

    def test_invalid_documents(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"schema": BASELINE_SCHEMA}))
        with pytest.raises(AnalysisError, match="invalid baseline"):
            load_baseline(path)
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(AnalysisError):
            load_baseline(path)

    def test_work_metrics_must_be_ints(self):
        with pytest.raises(AnalysisError, match="must be an int"):
            _result(work={"events": 1.5})
        with pytest.raises(AnalysisError, match="must be an int"):
            _result(work={"ok": True})
        with pytest.raises(AnalysisError, match="no work metrics"):
            BenchResult(name="b1", kind="micro", work={}, timing={})

    def test_duplicate_results_rejected(self):
        with pytest.raises(AnalysisError, match="duplicate"):
            _baseline([_result("b1"), _result("b1")])

    def test_latest_baseline_path(self, tmp_path):
        assert latest_baseline_path(tmp_path) is None
        save_baseline(_baseline([_result()]), tmp_path / "BENCH_0003.json")
        save_baseline(_baseline([_result()]), tmp_path / "BENCH_0010.json")
        assert latest_baseline_path(tmp_path).name == "BENCH_0010.json"


class TestCompareGate:
    def test_identical_runs_pass(self):
        base = _baseline([_result()])
        comp = compare_baselines(base, _baseline([_result()]))
        assert comp.ok
        assert comp.time_gated  # same machine fingerprint
        assert "PASS" in comp.render()

    def test_exact_work_mismatch_fails_in_both_directions(self):
        base = _baseline([_result(work={"events": 10})])
        for delta in (9, 11):
            cur = _baseline([_result(work={"events": delta})])
            comp = compare_baselines(base, cur)
            assert not comp.ok
            (failure,) = [v for v in comp.failures if v.kind == "work"]
            assert failure.metric == "work.events"

    def test_work_keys_must_match(self):
        base = _baseline([_result(work={"events": 10})])
        cur = _baseline([_result(work={"events": 10, "extra": 1})])
        assert not compare_baselines(base, cur).ok

    def test_time_drift_within_tolerance_passes(self):
        base = _baseline([_result(best=1.0)])
        cur = _baseline([_result(best=1.15)])
        comp = compare_baselines(base, cur, tolerance=0.20)
        assert comp.ok

    def test_time_regression_beyond_tolerance_fails_when_gated(self):
        base = _baseline([_result(best=1.0)])
        cur = _baseline([_result(best=1.5)])
        comp = compare_baselines(base, cur, tolerance=0.20)
        assert not comp.ok
        (failure,) = comp.failures
        assert failure.metric == "time.best"
        assert "tolerance" in failure.detail

    def test_time_not_gated_across_machines(self):
        other = dict(machine_fingerprint(), cpus=4096)
        base = _baseline([_result(best=1.0)], machine=other)
        cur = _baseline([_result(best=100.0)])
        comp = compare_baselines(base, cur)  # auto: fingerprints differ
        assert not comp.time_gated
        assert comp.ok
        # ...but work still gates exactly across machines
        cur_bad = _baseline([_result(work={"events": 1, "messages": 5})])
        assert not compare_baselines(base, cur_bad).ok

    def test_gate_time_can_be_forced(self):
        other = dict(machine_fingerprint(), cpus=4096)
        base = _baseline([_result(best=1.0)], machine=other)
        cur = _baseline([_result(best=100.0)])
        assert not compare_baselines(base, cur, gate_time=True).ok
        same = _baseline([_result(best=100.0)])
        assert compare_baselines(_baseline([_result(best=1.0)]),
                                 same, gate_time=False).ok

    def test_missing_bench_fails_new_bench_informs(self):
        base = _baseline([_result("a"), _result("b")])
        cur = _baseline([_result("a"), _result("c")])
        comp = compare_baselines(base, cur)
        assert not comp.ok
        assert any(v.bench == "b" and v.kind == "presence"
                   for v in comp.failures)
        skips = [v for v in comp.verdicts if v.status == "skip"]
        assert any(v.bench == "c" for v in skips)

    def test_time_improvement_passes(self):
        base = _baseline([_result(best=1.0)])
        cur = _baseline([_result(best=0.5)])
        assert compare_baselines(base, cur).ok

    def test_tolerance_validation(self):
        base = _baseline([_result()])
        with pytest.raises(AnalysisError):
            compare_baselines(base, base, tolerance=-0.1)


def _tiny_sweep_bench(name="zz_sweep", suites=("smoke",)):
    return BenchSpec(
        name=name,
        description="tiny sweep for tests",
        suites=suites,
        sweep=SweepSpec(families=("ring",), sizes=(6, 8), seeds=(0, 1)),
        repeats=1,
        warmup=0,
    )


def _tiny_micro_bench(name="zz_micro", suites=("smoke",)):
    return BenchSpec(
        name=name,
        description="tiny micro for tests",
        suites=suites,
        micro=lambda: (lambda: {"ops": 42}),
        repeats=2,
        warmup=0,
    )


@pytest.fixture
def private_registry(monkeypatch):
    """A scratch bench registry (tests never pollute the real one)."""
    from repro.perf import spec as spec_mod

    monkeypatch.setattr(spec_mod, "_BENCHES", {})
    return spec_mod


class TestSuiteRunner:
    def test_tiny_suite_end_to_end(self, private_registry):
        register_bench(_tiny_sweep_bench())
        register_bench(_tiny_micro_bench())
        base = run_suite("smoke")
        assert base.suite == "smoke"
        assert base.bench_names() == ("zz_micro", "zz_sweep")
        micro = base.result("zz_micro")
        assert micro.work == {"ops": 42}
        assert micro.derived["ops_per_sec"] > 0
        sweep = base.result("zz_sweep")
        assert sweep.work["cells"] == 4
        assert sweep.work["events"] > 0
        assert sweep.derived["events_per_sec"] > 0
        assert sweep.timing["repeats"] == 1
        lo, hi = sweep.timing["ci90"]
        assert lo <= hi

    def test_work_section_identical_serial_parallel_cached(
        self, private_registry, tmp_path
    ):
        register_bench(_tiny_sweep_bench())
        register_bench(_tiny_micro_bench())
        serial = run_suite("smoke")
        parallel = run_suite("smoke", jobs=2)
        cold = run_suite("smoke", cache=tmp_path / "cache")
        warm = run_suite("smoke", cache=tmp_path / "cache")
        blob = work_bytes(serial)
        assert work_bytes(parallel) == blob
        assert work_bytes(cold) == blob
        assert work_bytes(warm) == blob

    def test_non_deterministic_micro_fails_loudly(self, private_registry):
        counter = iter(range(100))

        def kernel():
            return lambda: {"ops": next(counter)}

        register_bench(
            BenchSpec(name="zz_flaky", description="d", suites=("smoke",),
                      micro=kernel, repeats=2, warmup=0)
        )
        with pytest.raises(AnalysisError, match="not work-deterministic"):
            run_suite("smoke")

    def test_empty_suite_is_an_error(self, private_registry):
        with pytest.raises(AnalysisError, match="no registered benches"):
            run_suite("smoke")

    def test_repeats_and_warmup_overrides(self, private_registry):
        register_bench(_tiny_micro_bench())
        base = run_suite("smoke", repeats=4, warmup=2)
        timing = base.result("zz_micro").timing
        assert timing["repeats"] == 4
        assert timing["warmup"] == 2
        assert len(timing["seconds"]) == 4

    def test_aggregate_work_counts_stalls(self):
        from repro.analysis.harness import run_single

        ok = run_single("ring", 6, seed=0)
        stalled = run_single("gnp_sparse", 16, seed=0, fault="lossy_heavy")
        work = aggregate_work([ok, stalled])
        assert work["cells"] == 2
        assert work["stalled"] == (0 if stalled.ok else 1)
        assert work["events"] == ok.events + stalled.events


class TestMutationSelfTest:
    """The perf analogue of the exploration harness's skip_cutter_gate
    self-test: the gate must notice the re-opened seed-era event loop."""

    @pytest.fixture
    def loop_suite(self, private_registry):
        """Just the loop-dominated benches — the mutation's blast
        radius, kept small so the self-test stays fast."""
        from repro.perf.workloads import echo_wave_kernel, full_protocol_kernel

        register_bench(
            BenchSpec(name="echo_wave", description="d", suites=("smoke",),
                      micro=echo_wave_kernel, repeats=3)
        )
        register_bench(
            BenchSpec(name="full_protocol", description="d", suites=("smoke",),
                      micro=full_protocol_kernel, repeats=2)
        )

    def test_slow_event_loop_trips_the_time_gate(self, loop_suite):
        healthy = run_suite("smoke")
        with mutated("slow_event_loop"):
            slow = run_suite("smoke")
        # metrics are byte-identical: the mutation only burns time...
        assert work_bytes(healthy) == work_bytes(slow)
        # ...which the gated comparison must catch
        comp = compare_baselines(healthy, slow, gate_time=True)
        assert not comp.ok
        assert any(v.metric == "time.best" for v in comp.failures)

    def test_healthy_replay_passes_the_work_gate(self, loop_suite):
        a = run_suite("smoke")
        b = run_suite("smoke")
        assert compare_baselines(a, b, gate_time=False).ok
        assert work_bytes(a) == work_bytes(b)


class TestEdgeBranches:
    def test_git_revision_outside_a_checkout(self, tmp_path):
        from repro.perf.baseline import git_revision

        assert git_revision(tmp_path) == "unknown"
        assert git_revision(".") != ""  # inside the repo: some revision

    def test_suite_names_mirrors_the_other_registries(self):
        from repro.perf import SUITES, suite_names

        assert suite_names() == SUITES == ("smoke", "core", "full")

    def test_unusable_timing_verdict(self):
        base = _baseline([_result()])
        broken = _result()
        object.__setattr__(broken, "timing", {"best": None})
        cur = _baseline([broken])
        comp = compare_baselines(base, cur, gate_time=True)
        assert not comp.ok
        assert any("unusable timing" in v.detail for v in comp.failures)
        # ungated, the same breakage is only a skip
        assert compare_baselines(base, cur, gate_time=False).ok

    def test_verdict_json_round_trip(self):
        comp = compare_baselines(_baseline([_result()]), _baseline([_result()]))
        payload = [v.to_json_dict() for v in comp.verdicts]
        assert all(p["bench"] == "b1" for p in payload)

    def test_bench_result_rejects_malformed_documents(self):
        with pytest.raises(AnalysisError, match="invalid bench result"):
            BenchResult.from_json_dict({"name": "x"})

    def test_mutated_slow_loop_preserves_traces(self):
        """The seed-era loop under ``slow_event_loop`` must stay
        byte-identical in behaviour — including the trace channel."""
        from repro.graphs import gnp_connected
        from repro.sim.trace import TraceRecorder
        from repro.spanning import build_spanning_tree

        g = gnp_connected(12, 0.3, seed=5)
        fast_trace = TraceRecorder()
        fast = build_spanning_tree(g, method="echo", trace=fast_trace)
        slow_trace = TraceRecorder()
        with mutated("slow_event_loop"):
            slow = build_spanning_tree(g, method="echo", trace=slow_trace)
        assert fast.tree.edges() == slow.tree.edges()
        assert fast.report == slow.report
        assert len(fast_trace.records) == len(slow_trace.records)
        assert fast_trace.records == slow_trace.records


class TestCoreSuiteCoversTheMigratedWorkloads:
    def test_core_suite_runs_and_is_self_consistent(self):
        """One cheap pass over the full core suite: every migrated
        t-workload executes, work metrics are populated, and the sweep
        benches agree between the executor pass and the timing pass
        (run_suite raises on divergence)."""
        base = run_suite("core", repeats=1, warmup=0)
        names = set(base.bench_names())
        assert {"t1_degree_quality", "t4_rounds", "t5_lower_bound",
                "t6_initial_tree", "t8_vs_sequential", "t9_ablation",
                "t2_messages", "t3_time", "t7_message_size",
                "executor_sweep", "campaign_tiny"} <= names
        for result in base.results:
            assert result.timing["best"] > 0
            assert sum(result.work.values()) > 0
        # t2/t3 share CLAIMS_SPEC: identical record-derived work
        assert base.result("t2_messages").work == base.result("t3_time").work
        # the tiny campaign exercises fault regimes: stalls are expected
        assert base.result("campaign_tiny").work["stalled"] > 0
