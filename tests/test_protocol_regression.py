"""Golden-trace regression suite for the protocol-primitive refactor.

The ``repro.protocol`` layer was extracted from hand-rolled bookkeeping
inside :class:`~repro.mdst.node.MDSTProcess` and the ``spanning/``
providers. The refactor's contract is *byte-identical traces*: the exact
same messages, in the exact same order, at the exact same simulated
times. These digests were captured from the pre-refactor seed
implementation; any divergence means the primitives changed observable
protocol behaviour, not just its packaging.
"""

import hashlib

from repro.graphs import complete, gnp_connected
from repro.mdst import MDSTConfig, run_mdst
from repro.sim import ExponentialDelay, TraceRecorder
from repro.spanning import (
    build_spanning_tree,
    greedy_hub_tree,
    random_spanning_tree,
)


def trace_digest(records) -> str:
    """Canonical sha256 over (time, action, src, dst, message repr)."""
    h = hashlib.sha256()
    for rec in records:
        line = f"{rec.time!r}|{rec.action}|{rec.src}|{rec.dst}|{rec.message!r}\n"
        h.update(line.encode("utf-8"))
    return h.hexdigest()


def mdst_digest(graph, tree, *, mode="concurrent", delay=None, seed=0) -> str:
    tr = TraceRecorder(capacity=10**6)
    run_mdst(
        graph, tree, config=MDSTConfig(mode=mode), delay=delay, seed=seed, trace=tr
    )
    return trace_digest(tr.records)


def spanning_digest(graph, method, *, seed=0) -> str:
    tr = TraceRecorder(capacity=10**6)
    build_spanning_tree(graph, method=method, seed=seed, trace=tr)
    return trace_digest(tr.records)


GOLDEN = {
    # full protocol, unit delays, concurrent mode
    "mdst_gnp18_concurrent": (
        "37e56a877a7255201d1135f5581efa8d8741128d2fcc68aeb3ac5b4099621946"
    ),
    # full protocol, unit delays, single mode
    "mdst_gnp18_single": (
        "a476b9c8b8b3b3fb28bf84894ced59399526a5f279c67170eb16db25b93eae12"
    ),
    # dense graph under heavy-tailed asynchrony (reordering pressure)
    "mdst_k10_exponential": (
        "8f7c3ed78aebd2f09efae427d6f2baf4b946973f6a9e450a2c3448ca65f93283"
    ),
    # random initial tree + exponential delays (the PR 1 race regression shape)
    "mdst_gnp6_race": (
        "87d8f353c59d9fa50e5f9be533bb579a0ce5d625620fb13880b494f5889f466b"
    ),
    # spanning providers refactored onto the primitives
    "echo_gnp16": (
        "fbef6147ba57511db65d2acb3225071dbfb306894931d4c2321b7ea2fcafcd54"
    ),
    "dfs_gnp16": (
        "3043f937c7b3435e5ea249a9e083ffb068bc3d093dd8dfae9b2d510fa50b181f"
    ),
}


class TestGoldenTraces:
    def test_mdst_gnp18_concurrent(self):
        g = gnp_connected(18, 0.3, seed=2)
        assert (
            mdst_digest(g, greedy_hub_tree(g)) == GOLDEN["mdst_gnp18_concurrent"]
        )

    def test_mdst_gnp18_single(self):
        g = gnp_connected(18, 0.3, seed=2)
        assert (
            mdst_digest(g, greedy_hub_tree(g), mode="single")
            == GOLDEN["mdst_gnp18_single"]
        )

    def test_mdst_k10_exponential(self):
        g = complete(10)
        assert (
            mdst_digest(
                g, greedy_hub_tree(g), delay=ExponentialDelay(mean=2.0), seed=5
            )
            == GOLDEN["mdst_k10_exponential"]
        )

    def test_mdst_gnp6_race(self):
        g = gnp_connected(6, 0.3, seed=3)
        t = random_spanning_tree(g, seed=0)
        assert (
            mdst_digest(g, t, delay=ExponentialDelay(), seed=15)
            == GOLDEN["mdst_gnp6_race"]
        )

    def test_echo_spanning(self):
        g = gnp_connected(16, 0.3, seed=6)
        assert spanning_digest(g, "echo") == GOLDEN["echo_gnp16"]

    def test_dfs_spanning(self):
        g = gnp_connected(16, 0.3, seed=6)
        assert spanning_digest(g, "dfs") == GOLDEN["dfs_gnp16"]


class TestGoldenStability:
    def test_digest_is_deterministic(self):
        """The digest itself must be a pure function of the run."""
        g = gnp_connected(12, 0.3, seed=1)
        t = greedy_hub_tree(g)
        assert mdst_digest(g, t) == mdst_digest(g, t)

    def test_digest_distinguishes_runs(self):
        g = gnp_connected(12, 0.3, seed=1)
        t = greedy_hub_tree(g)
        assert mdst_digest(g, t, mode="concurrent") != mdst_digest(
            g, t, mode="single"
        )
