"""White-box tests of MDST protocol internals: handshake ordering,
identifier-space robustness, mark bookkeeping, and stress scenarios."""

import pytest

from repro.errors import ProtocolError
from repro.graphs import (
    complete,
    complete_bipartite,
    gnp_connected,
    lollipop,
    ring,
    torus,
)
from repro.mdst import MDSTConfig, run_mdst
from repro.sim import (
    ExponentialDelay,
    TraceRecorder,
    UniformDelay,
)
from repro.spanning import build_spanning_tree, greedy_hub_tree


class TestNonContiguousIdentities:
    """The paper only assumes *distinct* identities — nothing else."""

    @pytest.mark.parametrize("factor,offset", [(7, 1000), (13, 5), (3, 0)])
    def test_protocol_handles_arbitrary_ids(self, factor, offset):
        base = gnp_connected(18, 0.3, seed=2)
        g = base.relabeled({u: offset + factor * u for u in base.nodes()})
        t0 = greedy_hub_tree(g)
        res = run_mdst(g, t0, check_invariants=True)
        assert res.final_tree.is_spanning_tree_of(g)
        assert res.final_degree <= t0.max_degree()

    def test_relabeling_invariance_of_quality(self):
        """Relabeling cannot change the achievable degree (only the
        tie-breaking path there — final degree may differ by at most the
        usual local-optimum wobble of one)."""
        base = gnp_connected(16, 0.35, seed=4)
        t0 = greedy_hub_tree(base)
        res_a = run_mdst(base, t0)
        mapping = {u: 500 - 3 * u for u in base.nodes()}
        g2 = base.relabeled(mapping)
        t2 = greedy_hub_tree(g2)
        res_b = run_mdst(g2, t2)
        assert abs(res_a.final_degree - res_b.final_degree) <= 1

    @pytest.mark.parametrize("method", ["echo", "dfs", "ghs", "election"])
    def test_spanning_constructions_handle_arbitrary_ids(self, method):
        base = gnp_connected(14, 0.35, seed=6)
        g = base.relabeled({u: 42 + 11 * u for u in base.nodes()})
        out = build_spanning_tree(g, method=method, seed=1)
        assert out.tree.is_spanning_tree_of(g)


class TestHandshakeOrdering:
    """The repairs rely on FIFO ordering of specific message pairs."""

    def test_moveroot_ack_precedes_cut_in_trace(self):
        g = complete(8)
        tr = TraceRecorder(capacity=10**6)
        run_mdst(g, greedy_hub_tree(g), trace=tr)
        # for every (src, dst): MoveRootAck send must precede any Cut send
        # issued by the same node to the same target within a round
        per_link: dict[tuple[int, int], list[str]] = {}
        for rec in tr.records:
            if rec.action != "send" or rec.message is None:
                continue
            name = type(rec.message).__name__
            if name in ("MoveRootAck", "Cut"):
                per_link.setdefault((rec.src, rec.dst), []).append(name)
        for (src, dst), names in per_link.items():
            if "MoveRootAck" in names and "Cut" in names:
                assert names.index("MoveRootAck") < names.index("Cut"), (src, dst)

    def test_childack_precedes_exchange_done(self):
        g = complete(8)
        tr = TraceRecorder(capacity=10**6)
        run_mdst(g, greedy_hub_tree(g), trace=tr)
        acks = [r.time for r in tr.records if r.action == "deliver"
                and type(r.message).__name__ == "ChildAck"]
        dones = [r.time for r in tr.records if r.action == "send"
                 and type(r.message).__name__ == "ExchangeDone"]
        assert len(acks) == len(dones)
        # each exchange's done is sent only after its ack arrived
        for a, d in zip(sorted(acks), sorted(dones)):
            assert a <= d

    def test_one_exchange_per_cutter_per_round(self):
        g = gnp_connected(24, 0.25, seed=8)
        res = run_mdst(g, greedy_hub_tree(g))
        for r in res.rounds:
            assert r.improved <= r.cutters


class TestStressTopologies:
    @pytest.mark.parametrize(
        "g",
        [
            torus(4, 4),
            lollipop(6, 5),
            complete_bipartite(3, 12),
            ring(24),
        ],
        ids=["torus", "lollipop", "bipartite", "bigring"],
    )
    def test_structured_topologies(self, g):
        t0 = greedy_hub_tree(g)
        for mode in ("concurrent", "single"):
            res = run_mdst(
                g, t0, config=MDSTConfig(mode=mode), check_invariants=True
            )
            assert res.final_tree.is_spanning_tree_of(g)

    def test_dense_async_stress(self):
        """Dense graph + heavy-tailed delays + many seeds: the strongest
        reordering pressure we can apply in-tree."""
        g = complete(12)
        t0 = greedy_hub_tree(g)
        for seed in range(10):
            res = run_mdst(
                g,
                t0,
                delay=ExponentialDelay(mean=2.0),
                seed=seed,
                check_invariants=True,
            )
            assert res.final_degree == 2  # K_n always reaches the chain

    def test_repeated_runs_share_no_state(self):
        """Factories must not leak state across Network instances."""
        g = gnp_connected(16, 0.3, seed=1)
        t0 = greedy_hub_tree(g)
        first = run_mdst(g, t0, delay=UniformDelay(), seed=3)
        second = run_mdst(g, t0, delay=UniformDelay(), seed=3)
        assert first.final_tree.edges() == second.final_tree.edges()
        assert first.report.by_type == second.report.by_type


class TestMarks:
    def test_round_marks_are_paired_and_ordered(self):
        g = gnp_connected(20, 0.25, seed=5)
        res = run_mdst(g, greedy_hub_tree(g))
        starts = [v for _t, l, v in res.report.marks if l == "round"]
        ends = [v for _t, l, v in res.report.marks if l == "round_end"]
        assert len(starts) == len(ends) == res.num_rounds
        assert [s["index"] for s in starts] == sorted(s["index"] for s in starts)
        assert {e["index"] for e in ends} == {s["index"] for s in starts}

    def test_final_k_marked_on_termination(self):
        g = ring(8)
        res = run_mdst(g, build_spanning_tree(g, method="cdfs").tree)
        labels = [l for _t, l, _v in res.report.marks]
        assert "final_k" in labels

    def test_capped_run_marks(self):
        g = complete(10)
        res = run_mdst(g, greedy_hub_tree(g), config=MDSTConfig(max_rounds=1))
        labels = [l for _t, l, _v in res.report.marks]
        assert "capped" in labels


class TestErrorPaths:
    def test_update_from_non_parent_raises(self):
        """Direct white-box poke: feeding Update from a non-parent must
        be rejected loudly."""
        from repro.mdst.messages import Update
        from repro.mdst.node import MDSTProcess
        from repro.mdst.config import MDSTConfig as Cfg
        from repro.sim import NodeContext

        ctx = NodeContext(node_id=5, neighbors=(1, 2, 3))
        ctx._send = lambda *a: None
        ctx._now = lambda: 0.0
        ctx._mark = lambda *a, **k: None
        proc = MDSTProcess(ctx, parent=1, children={2}, config=Cfg())
        with pytest.raises(ProtocolError):
            proc.on_message(3, Update(local=5, remote=2))

    def test_stray_child_ack_raises(self):
        from repro.mdst.messages import ChildAck
        from repro.mdst.node import MDSTProcess
        from repro.mdst.config import MDSTConfig as Cfg
        from repro.sim import NodeContext

        ctx = NodeContext(node_id=5, neighbors=(1, 2))
        ctx._send = lambda *a: None
        ctx._now = lambda: 0.0
        ctx._mark = lambda *a, **k: None
        proc = MDSTProcess(ctx, parent=1, children=set(), config=Cfg())
        with pytest.raises(ProtocolError):
            proc.on_message(2, ChildAck())

    def test_search_from_non_parent_raises(self):
        from repro.mdst.messages import Search
        from repro.mdst.node import MDSTProcess
        from repro.mdst.config import MDSTConfig as Cfg
        from repro.sim import NodeContext

        ctx = NodeContext(node_id=5, neighbors=(1, 2))
        ctx._send = lambda *a: None
        ctx._now = lambda: 0.0
        ctx._mark = lambda *a, **k: None
        proc = MDSTProcess(ctx, parent=1, children=set(), config=Cfg())
        with pytest.raises(ProtocolError):
            proc.on_message(2, Search(reset=False, single=False))


class TestCutterCrossReplyRace:
    """Regression: a cutter must not finish its round while its own
    CousinReply is still in flight — the reply would land in the next
    round's fresh state and raise "unexpected CousinReply".

    Found by hypothesis under exponential delays; the instances below
    reproduced it deterministically before the `_maybe_cutter_choose`
    gate (cut-children echoes AND the cutter's own cross replies must
    both drain before choosing).
    """

    @pytest.mark.parametrize("sched_seed", [1, 2, 15, 19])
    def test_late_cousin_reply_to_round_root(self, sched_seed):
        from repro.spanning import random_spanning_tree

        graph = gnp_connected(6, 0.3, seed=3)
        tree = random_spanning_tree(graph, seed=0)
        res = run_mdst(
            graph,
            tree,
            config=MDSTConfig(mode="concurrent"),
            delay=ExponentialDelay(),
            seed=sched_seed,
            check_invariants=True,
        )
        assert res.final_tree.is_spanning_tree_of(graph)
        assert res.final_degree <= res.initial_degree
        assert res.report.quiescent
