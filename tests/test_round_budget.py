"""Per-round message budget audit (§4.2 of the paper).

The paper's per-round budget is 2m + 3(n−1) messages; our repairs cost a
constant factor (always-reply cousins double non-tree traffic, the
barrier adds ≤ cutters·height reports). With per-round message counts
now recorded in RoundInfo, the budget is checkable round by round.
"""

import pytest

from repro.graphs import complete, gnp_connected, random_geometric, wheel
from repro.mdst import MDSTConfig, run_mdst
from repro.spanning import greedy_hub_tree

CASES = [
    ("k10", complete(10)),
    ("wheel12", wheel(12)),
    ("gnp24", gnp_connected(24, 0.25, seed=2)),
    ("geo20", random_geometric(20, 0.42, seed=3)),
]


def _budget(g, cutters):
    # search+reports+move(+acks)+terminate <= 6n, tree waves+echoes <= 2n,
    # cross waves+replies <= 4(m-n+1), exchange <= 4n, barrier <= cutters*n
    n, m = g.n, g.m
    return 12 * n + 4 * (m - n + 1) + cutters * n


class TestPerRoundBudget:
    @pytest.mark.parametrize("name,g", CASES, ids=[c[0] for c in CASES])
    def test_every_round_within_budget(self, name, g):
        res = run_mdst(g, greedy_hub_tree(g), seed=0)
        assert res.rounds, "expected at least one round"
        for r in res.rounds:
            assert r.messages <= _budget(g, r.cutters), (
                f"round {r.index}: {r.messages} messages exceeds budget"
            )

    def test_round_messages_sum_close_to_total(self):
        g = gnp_connected(20, 0.3, seed=4)
        res = run_mdst(g, greedy_hub_tree(g), seed=0)
        per_round = sum(r.messages for r in res.rounds)
        # everything outside counted rounds is the pre-round start and
        # the final terminating sweep: at most ~4n messages
        assert 0 <= res.messages - per_round <= 6 * g.n

    def test_single_mode_budget(self):
        g = gnp_connected(24, 0.25, seed=5)
        res = run_mdst(g, greedy_hub_tree(g), config=MDSTConfig(mode="single"))
        for r in res.rounds:
            assert r.cutters == 1
            assert r.messages <= _budget(g, 1)

    def test_round_messages_positive(self):
        g = complete(8)
        res = run_mdst(g, greedy_hub_tree(g))
        assert all(r.messages > 0 for r in res.rounds)
