"""CLI surface of the telemetry layer: ``--trace-out`` on the batch
commands, the ``repro obs`` summarizer (golden output), and the
regression guarantee that tracing never changes any pre-existing
deterministic artifact."""

import json

import pytest

from repro import obs
from repro.cli import main

FAST = ["--repeats", "1", "--warmup", "0"]

OBS_GOLDEN = """\
trace summary — command: sweep (deterministic)

spans — 3 span(s), 3 name(s)
============================
span           count  total [ms]  self [ms]  work
----------------------------------------------------------------------------------------------------
sweep              1  —           —          cells=3
sweep.execute      1  —           —          —
group              1  —           —          cells=3 events=87 messages=63 n=8 stalled=0 family=ring

counters:
  cache.corruption   1
  cache.hits.disk    1
  cache.hits.memory  2
  cache.misses       1
  exec.groups        1

cache: 3 hit(s) (2 memory, 1 disk, 0 legacy), 1 miss(es), 1 corruption(s) — hit rate 75.0%

events: 1
  cache.corruption  x1
"""


def synthetic_trace(path):
    t = obs.Telemetry(command="sweep")
    with t.span("sweep", cells=3):
        with t.span("sweep.execute"):
            pass
        t.leaf("group", family="ring", n=8, cells=3, events=87,
               messages=63, stalled=0)
    t.count("exec.groups")
    t.count("cache.hits.memory", 2)
    t.count("cache.hits.disk", 1)
    t.count("cache.misses", 1)
    t.count("cache.corruption", 1)
    t.event("cache.corruption", detail="truncated segment",
            segment="seg-00000.pack")
    return obs.write_trace(path, t)


class TestObsCommand:
    def test_golden_summary(self, capsys, tmp_path):
        path = synthetic_trace(tmp_path / "t.jsonl")
        assert main(["obs", str(path)]) == 0
        assert capsys.readouterr().out == OBS_GOLDEN

    def test_missing_trace_exits_2(self, capsys, tmp_path):
        assert main(["obs", str(tmp_path / "absent.jsonl")]) == 2
        assert "no such trace" in capsys.readouterr().err

    def test_malformed_trace_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n", encoding="utf-8")
        assert main(["obs", str(bad)]) == 2
        assert "not a telemetry trace" in capsys.readouterr().err

    def test_full_trace_renders_timings(self, capsys, tmp_path):
        trace = tmp_path / "full.jsonl"
        assert main([
            "sweep", "--families", "ring", "--sizes", "8", "--seeds", "0",
            "--trace-out", str(trace), "--no-trace-deterministic",
        ]) == 0
        capsys.readouterr()
        assert main(["obs", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "(full)" in out
        assert "top spans by self time:" in out
        assert "env: " in out


class TestTraceOut:
    def sweep(self, trace, *extra):
        return main([
            "sweep", "--families", "ring", "--sizes", "8",
            "--seeds", "0", "1", "--trace-out", str(trace), *extra,
        ])

    def test_deterministic_trace_has_no_wall_or_env_lines(
        self, capsys, tmp_path
    ):
        trace = tmp_path / "t.jsonl"
        assert self.sweep(trace) == 0
        assert f"trace: {trace}" in capsys.readouterr().err
        kinds = {d["kind"] for d in obs.read_trace(trace)}
        assert kinds == {"header", "span", "counter"}

    def test_full_trace_appends_wall_and_env(self, tmp_path):
        det, full = tmp_path / "det.jsonl", tmp_path / "full.jsonl"
        assert self.sweep(det) == 0
        assert self.sweep(full, "--no-trace-deterministic") == 0
        det_lines = det.read_text(encoding="utf-8").splitlines()
        full_lines = full.read_text(encoding="utf-8").splitlines()
        # same deterministic prefix (modulo the header flag)…
        assert full_lines[1 : len(det_lines)] == det_lines[1:]
        # …plus the segregated sections
        suffix_kinds = [
            json.loads(line)["kind"] for line in full_lines[len(det_lines) :]
        ]
        assert suffix_kinds[0] == "env"
        assert set(suffix_kinds[1:]) == {"wall"}

    def test_trace_is_byte_identical_serial_vs_jobs(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert self.sweep(a) == 0
        assert self.sweep(b, "--jobs", "2") == 0
        assert a.read_bytes() == b.read_bytes()


class TestArtifactsUnchanged:
    """--trace-out must never perturb a pre-existing deterministic
    artifact: reports and bench work metrics stay byte-identical."""

    def campaign(self, out, *extra):
        return main([
            "campaign", "paper_baseline", "--tiny", "--out", str(out), *extra,
        ])

    def test_campaign_reports_identical_with_and_without_trace(
        self, capsys, tmp_path
    ):
        plain, traced = tmp_path / "plain", tmp_path / "traced"
        assert self.campaign(plain) == 0
        assert self.campaign(
            traced, "--trace-out", str(tmp_path / "t.jsonl")
        ) == 0
        capsys.readouterr()
        for name in ("report.md", "report.json"):
            assert (plain / name).read_bytes() == (traced / name).read_bytes()

    def test_bench_work_fingerprint_identical_with_and_without_trace(
        self, capsys, tmp_path
    ):
        def fingerprint(*extra):
            assert main(["bench", "--suite", "smoke", *FAST, *extra]) == 0
            out = capsys.readouterr().out
            return next(
                line for line in out.splitlines()
                if line.startswith("work fingerprint:")
            )

        plain = fingerprint()
        traced = fingerprint("--trace-out", str(tmp_path / "t.jsonl"))
        assert plain == traced

    def test_bench_trace_counters_do_not_scale_with_repeats(self, tmp_path):
        def counters(path, repeats):
            assert main([
                "bench", "--suite", "smoke", "--repeats", str(repeats),
                "--warmup", "0", "--trace-out", str(path),
            ]) == 0
            return [
                d for d in obs.read_trace(path) if d["kind"] == "counter"
            ]

        once = counters(tmp_path / "r1.jsonl", 1)
        twice = counters(tmp_path / "r2.jsonl", 2)
        assert once == twice  # the timing pass is telemetry-suspended


class TestExploreTrace:
    def test_explore_writes_a_summarizable_trace(self, capsys, tmp_path):
        trace = tmp_path / "explore.jsonl"
        assert main([
            "explore", "--sizes", "6", "--seeds", "0", "--schedulers",
            "lifo", "--trace-out", str(trace),
        ]) == 0
        capsys.readouterr()
        assert main(["obs", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "command: explore" in out
        assert "explore.judge" in out
        assert "failures=0" in out


class TestBenchProfileSpans:
    def test_profile_prints_span_summary(self, capsys):
        assert main(["bench", "--profile", "message_codec"]) == 0
        out = capsys.readouterr().out
        assert "profile: bench 'message_codec' (micro)" in out
        assert "trace summary — command: bench --profile (full)" in out
        assert "bench.profile" in out


@pytest.mark.parametrize("command", ["sweep", "campaign", "explore", "bench"])
def test_batch_commands_expose_trace_flags(command):
    from repro.cli import build_parser

    parser = build_parser()
    text = parser.format_help()
    assert command in text  # sanity: the subcommand exists
    sub = next(
        a for a in parser._actions
        if isinstance(a, __import__("argparse")._SubParsersAction)
    )
    help_text = sub.choices[command].format_help()
    assert "--trace-out" in help_text
    assert "--no-trace-deterministic" in help_text


class TestObsDiff:
    def sweep(self, trace, *extra):
        return main([
            "sweep", "--families", "ring", "--sizes", "8",
            "--seeds", "0", "1", "--trace-out", str(trace), *extra,
        ])

    def test_identical_traces_exit_0(self, capsys, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert self.sweep(a) == 0
        assert self.sweep(b, "--jobs", "2") == 0
        capsys.readouterr()
        assert main(["obs", "--diff", str(a), str(b)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_work_divergence_exits_1_with_deltas(self, capsys, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert self.sweep(a) == 0
        assert main([
            "sweep", "--families", "ring", "--sizes", "8",
            "--seeds", "0", "1", "2", "--trace-out", str(b),
        ]) == 0
        capsys.readouterr()
        assert main(["obs", "--diff", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "DIVERGED" in out
        assert "->" in out  # at least one counter/span delta line

    def test_cache_only_deltas_do_not_fail(self, capsys, tmp_path):
        """The CI warm-replay semantics: cold vs warm traces differ in
        cache counters but the work section is identical — exit 0."""
        cache = str(tmp_path / "cache")
        cold, warm = tmp_path / "cold.jsonl", tmp_path / "warm.jsonl"
        assert self.sweep(cold, "--cache", cache) == 0
        assert self.sweep(warm, "--cache", cache) == 0
        capsys.readouterr()
        assert main(["obs", "--diff", str(cold), str(warm)]) == 0
        out = capsys.readouterr().out
        assert "cache" in out  # the deltas are printed...
        assert "DIVERGED" not in out  # ...but do not fail the diff

    def test_missing_operand_exits_2(self, capsys, tmp_path):
        assert main(["obs", "--diff", str(tmp_path / "a"), "missing"]) == 2
        assert "obs:" in capsys.readouterr().err

    def test_bare_obs_without_trace_exits_2(self, capsys):
        assert main(["obs"]) == 2
        assert "give a trace PATH or --diff" in capsys.readouterr().err


class TestInspectCommand:
    def capture(self, tmp_path, *extra):
        art = tmp_path / "causal.jsonl"
        rc = main([
            "run", "--family", "ring", "--n", "10", "--seed", "0",
            "--causal-out", str(art), *extra,
        ])
        return rc, art

    def test_run_writes_inspectable_artifact(self, capsys, tmp_path):
        rc, art = self.capture(tmp_path)
        assert rc == 0
        assert f"causal: {art}" in capsys.readouterr().err
        assert main(["inspect", str(art)]) == 0
        out = capsys.readouterr().out
        assert "causal artifact:" in out
        assert "critical path:" in out

    def test_attribution_and_critical_path_views(self, capsys, tmp_path):
        _, art = self.capture(tmp_path)
        capsys.readouterr()
        assert main([
            "inspect", str(art), "--attribution", "--critical-path",
        ]) == 0
        out = capsys.readouterr().out
        assert "section" in out and "total" in out
        assert "depth" in out

    def test_timeline_export_and_json_mode(self, capsys, tmp_path):
        _, art = self.capture(tmp_path)
        tl = tmp_path / "timeline.json"
        capsys.readouterr()
        assert main([
            "inspect", str(art), "--timeline", str(tl),
            "--critical-path", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["crit_len"] == len(
            payload["critical_path"]
        )
        doc = json.loads(tl.read_text(encoding="utf-8"))
        assert doc["otherData"]["artifact"] == "repro-causal-timeline"
        assert doc["traceEvents"]

    def test_artifact_byte_identical_across_reruns(self, capsys, tmp_path):
        _, a = self.capture(tmp_path)
        b = tmp_path / "again.jsonl"
        assert main([
            "run", "--family", "ring", "--n", "10", "--seed", "0",
            "--causal-out", str(b),
        ]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()

    def test_missing_artifact_exits_2(self, capsys, tmp_path):
        assert main(["inspect", str(tmp_path / "absent.jsonl")]) == 2
        assert "inspect:" in capsys.readouterr().err

    def test_stalled_run_still_writes_artifact(self, capsys, tmp_path):
        art = tmp_path / "stalled.jsonl"
        rc = main([
            "run", "--family", "gnp_sparse", "--n", "12", "--seed", "0",
            "--fault", "crash_storm", "--causal-out", str(art),
        ])
        err = capsys.readouterr().err
        if rc == 1:  # the plan actually stalled this instance
            assert "stalled" in err
            assert main(["inspect", str(art)]) == 0
