"""Execution backends: serial/parallel determinism, the disk result
cache, sweep-cell enumeration, and eager sweep-axis validation."""

import pytest

from repro.analysis import (
    CachingExecutor,
    ParallelExecutor,
    ResultCache,
    RunRecord,
    RunSpec,
    SerialExecutor,
    SweepSpec,
    cache_key,
    make_executor,
    run_single,
    run_sweep,
)
from repro.errors import AnalysisError
from repro.graphs import gnp_connected
from repro.mdst import run_mdst
from repro.sim import UniformDelay
from repro.spanning import build_spanning_tree

SPEC = SweepSpec(
    families=("gnp_sparse",),
    sizes=(10, 12),
    seeds=(0, 1),
    delays=("uniform",),
)


class TestDeterminism:
    def test_parallel_matches_serial(self):
        cells = SPEC.cells()
        serial = SerialExecutor().run(cells)
        parallel = ParallelExecutor(jobs=4).run(cells)
        assert parallel == serial

    def test_run_sweep_jobs_matches_serial(self):
        assert run_sweep(SPEC, jobs=4) == run_sweep(SPEC)

    def test_random_delay_reports_reproduce(self):
        graph = gnp_connected(12, 0.3, seed=5)
        tree = build_spanning_tree(graph, method="greedy_hub").tree
        reports = [
            run_mdst(graph, tree, seed=7, delay=UniformDelay()).report
            for _ in range(2)
        ]
        assert reports[0] == reports[1]


class TestCells:
    def test_cell_grid_order_and_count(self):
        spec = SweepSpec(
            families=("complete", "ring"),
            sizes=(8,),
            seeds=(0, 1),
            modes=("concurrent", "single"),
            max_rounds=3,
        )
        cells = spec.cells()
        assert len(cells) == 8
        assert cells[0] == RunSpec(
            family="complete", n=8, seed=0, mode="concurrent", max_rounds=3
        )
        # seeds vary fastest, families slowest (the historical sweep order)
        assert [c.seed for c in cells[:2]] == [0, 1]
        assert cells[-1].family == "ring"

    def test_runspec_json_roundtrip(self):
        spec = RunSpec(family="ring", n=9, seed=3, delay="perlink", max_rounds=2)
        assert RunSpec.from_json_dict(spec.to_json_dict()) == spec


class TestValidation:
    def test_unknown_family_fails_fast(self):
        with pytest.raises(AnalysisError, match="gnp_sparse"):
            SweepSpec(families=("nope",))

    def test_unknown_mode_fails_fast(self):
        with pytest.raises(AnalysisError, match="concurrent"):
            SweepSpec(modes=("turbo",))

    def test_unknown_delay_fails_fast(self):
        with pytest.raises(AnalysisError, match="uniform"):
            SweepSpec(delays=("warp",))

    def test_unknown_initial_method_fails_fast(self):
        with pytest.raises(AnalysisError, match="echo"):
            SweepSpec(initial_methods=("magic",))

    def test_bad_sizes_fail_fast(self):
        with pytest.raises(AnalysisError, match="sizes"):
            SweepSpec(sizes=(16, 0))

    def test_bad_jobs_rejected(self):
        with pytest.raises(AnalysisError):
            ParallelExecutor(jobs=0)


class TestMaxRoundsRecorded:
    def test_run_single_records_max_rounds(self):
        rec = run_single("gnp_sparse", 12, seed=0, max_rounds=2)
        assert rec.max_rounds == 2
        assert rec.rounds <= 2

    def test_sweep_records_carry_max_rounds(self):
        spec = SweepSpec(families=("complete",), sizes=(8,), seeds=(0,), max_rounds=1)
        (rec,) = run_sweep(spec)
        assert rec.max_rounds == 1

    def test_legacy_record_dict_still_loads(self):
        rec = run_single("gnp_sparse", 10, seed=0)
        data = rec.to_json_dict()
        del data["max_rounds"]  # record saved before the field existed
        assert RunRecord.from_json_dict(data).max_rounds is None


class TestResultCache:
    def test_second_sweep_is_served_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = run_sweep(SPEC, cache=cache)
        assert len(cache) == len(SPEC.cells())
        assert cache.hits == 0

        # a poisoned inner executor proves no cell is re-run
        class Exploding:
            def run(self, cells):
                raise AssertionError(f"cache missed {len(cells)} cells")

        second = CachingExecutor(Exploding(), cache).run(SPEC.cells())
        assert second == first
        assert cache.hits == len(SPEC.cells())

    def test_cache_keys_are_stable_and_distinct(self):
        a = RunSpec(family="ring", n=8, seed=0)
        assert cache_key(a) == cache_key(RunSpec(family="ring", n=8, seed=0))
        assert cache_key(a) != cache_key(RunSpec(family="ring", n=8, seed=1))

    def test_corrupt_entry_is_a_miss_and_heals(self, tmp_path):
        cache = ResultCache(tmp_path, memory_entries=0)
        spec = RunSpec(family="gnp_sparse", n=10, seed=0)
        record = run_single("gnp_sparse", 10, seed=0)
        cache.put(spec, record)
        (segment,) = (tmp_path / "segments").glob("seg-*.pack")
        segment.write_text("{ not json", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="treated as a miss"):
            assert cache.get(spec) is None
        cache.put(spec, record)
        assert cache.get(spec) == record

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(RunSpec(family="ring", n=8, seed=0), run_single("ring", 8, seed=0))
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_make_executor_shapes(self, tmp_path):
        assert isinstance(make_executor(), SerialExecutor)
        assert isinstance(make_executor(jobs=4), ParallelExecutor)
        combined = make_executor(jobs=4, cache=tmp_path)
        assert isinstance(combined, CachingExecutor)
        assert isinstance(combined.inner, ParallelExecutor)


class TestGroupWireCodec:
    """The compact group encoding that crosses the worker boundary."""

    def test_group_round_trip(self):
        from repro.analysis.executor import _decode_group, _encode_group

        cells = [RunSpec(family="ring", n=8, seed=s, delay="perlink") for s in (3, 7)]
        payload = _encode_group(cells)
        assert payload["seeds"] == [3, 7]
        assert "seed" not in payload["spec"]  # template carried once
        assert _decode_group(payload) == cells

    def test_record_rows_round_trip(self):
        from repro.analysis.executor import _decode_records, _encode_records

        records = [run_single("ring", 8, seed=s) for s in (0, 1)]
        assert _decode_records(_encode_records(records)) == records

    def test_worker_entry_matches_serial(self):
        from repro.analysis.executor import (
            _decode_records,
            _encode_group,
            _run_group_json,
            execute_cell,
        )

        cells = [RunSpec(family="gnp_sparse", n=12, seed=s) for s in range(3)]
        result = _run_group_json(execute_cell, _encode_group(cells))
        assert _decode_records(result["rows"]) == SerialExecutor().run(cells)
        # the worker ships its telemetry home alongside the rows
        assert result["obs"]["counters"]

    def test_unbatched_parallel_matches_serial(self):
        cells = SPEC.cells()
        reference = SerialExecutor(batch=False).run(cells)
        assert ParallelExecutor(jobs=2, batch=False).run(cells) == reference
        assert SerialExecutor().run(cells) == reference


class TestPersistentPool:
    def test_pool_is_reused_across_runs_and_closed(self):
        cells = SPEC.cells()
        with ParallelExecutor(jobs=2, persistent=True) as executor:
            first = executor.run(cells)
            pool = executor._pool
            assert pool is not None
            assert executor.run(cells) == first
            assert executor._pool is pool  # same pool, no respawn
        assert executor._pool is None  # context exit closed it

    def test_close_is_idempotent_and_lazy(self):
        executor = ParallelExecutor(jobs=2, persistent=True)
        assert executor._pool is None  # nothing spawned until needed
        executor.close()
        executor.close()

    def test_transient_mode_leaves_no_pool_behind(self):
        executor = ParallelExecutor(jobs=2)
        executor.run(SPEC.cells())
        assert executor._pool is None

    def test_make_executor_persistent_flag(self, tmp_path):
        executor = make_executor(jobs=2, persistent=True)
        assert executor.persistent
        combined = make_executor(jobs=2, cache=tmp_path, persistent=True)
        assert combined.inner.persistent


class TestBatchedCachingExecutor:
    def test_only_misses_reach_the_inner_executor_as_one_batch(self, tmp_path):
        cells = SPEC.cells()
        cache = ResultCache(tmp_path)
        run_sweep(SweepSpec(families=("gnp_sparse",), sizes=(10,),
                            seeds=(0, 1), delays=("uniform",)), cache=cache)

        batches = []

        class Recording:
            def run(self, missed):
                batches.append(list(missed))
                return SerialExecutor().run(missed)

        result = CachingExecutor(Recording(), cache).run(cells)
        assert result == run_sweep(SPEC)
        (batch,) = batches  # exactly one inner dispatch for all misses
        assert batch == [c for c in cells if c.n == 12]

    def test_fully_warm_batch_never_dispatches(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_sweep(SPEC, cache=cache)

        class Exploding:
            def run(self, cells):
                raise AssertionError("dispatched on a warm cache")

        # a fresh cache object proves the disk tier alone answers
        warm = CachingExecutor(Exploding(), ResultCache(tmp_path))
        assert warm.run(SPEC.cells()) == first

    def test_half_warm_group_results_stay_byte_identical(self, tmp_path):
        cells = SPEC.cells()
        reference = SerialExecutor().run(cells)
        cache = ResultCache(tmp_path)
        cache.put_many([(cells[0], reference[0]), (cells[3], reference[3])])
        combined = CachingExecutor(ParallelExecutor(jobs=2), cache)
        assert combined.run(cells) == reference


class TestCacheSchemaVersioning:
    """Entries written under a stale CACHE_SCHEMA_VERSION must be ignored
    (treated as misses), never served into tables (PR 1 follow-up)."""

    def test_stale_schema_entry_is_ignored(self, tmp_path, monkeypatch):
        from repro.analysis import cache as cache_mod

        spec = RunSpec(family="ring", n=8, seed=0)
        record = run_single("ring", 8, seed=0)

        store = ResultCache(tmp_path)
        current = cache_mod.CACHE_SCHEMA_VERSION
        monkeypatch.setattr(cache_mod, "CACHE_SCHEMA_VERSION", current - 1)
        store.put(spec, record)  # written under the previous schema
        assert store.get(spec) == record  # visible while schema is old

        monkeypatch.setattr(cache_mod, "CACHE_SCHEMA_VERSION", current)
        assert store.get(spec) is None  # stale entry: a miss, not a hit
        store.put(spec, record)
        assert store.get(spec) == record  # re-populated under new schema

    def test_schema_version_changes_cache_key(self, monkeypatch):
        from repro.analysis import cache as cache_mod

        spec = RunSpec(family="ring", n=8, seed=0)
        key_now = cache_key(spec)
        monkeypatch.setattr(
            cache_mod, "CACHE_SCHEMA_VERSION", cache_mod.CACHE_SCHEMA_VERSION + 1
        )
        assert cache_key(spec) != key_now

    def test_schema_version_is_bumped_past_pr1(self):
        from repro.analysis.cache import CACHE_SCHEMA_VERSION

        assert CACHE_SCHEMA_VERSION >= 2

    def test_schema_version_is_bumped_for_the_fault_axis(self):
        """v3: RunSpec/RunRecord gained the ``fault`` axis + ``outcome``
        field — v2 entries would deserialize fine but must invalidate
        rather than alias the fault-free cell (stale-schema regression
        for the scenario/campaign PR)."""
        from repro.analysis.cache import CACHE_SCHEMA_VERSION

        assert CACHE_SCHEMA_VERSION >= 3

    def test_schema_version_is_bumped_for_the_scheduler_axis(self):
        """v4: RunSpec/RunRecord gained the ``scheduler`` axis
        (adversarial schedule policies, exploration PR) — a v3 entry has
        no scheduler field and would alias the time-scheduled cell."""
        from repro.analysis.cache import CACHE_SCHEMA_VERSION

        assert CACHE_SCHEMA_VERSION >= 4

    def test_schema_version_is_bumped_for_the_events_metric(self):
        """v5: RunRecord gained the ``events`` work metric (perf
        trajectory PR) — a v4 entry deserializes with events=0 and would
        silently zero the benchmark gate's primary work metric."""
        from repro.analysis.cache import CACHE_SCHEMA_VERSION

        assert CACHE_SCHEMA_VERSION >= 5

    def test_schema_version_is_bumped_for_the_churn_axis(self):
        """v6: RunSpec/RunRecord gained the ``churn`` axis and scheduler
        spec strings started carrying replay prefixes (fuzzing PR) — a
        v5 entry has no churn field and would alias the churn-free
        cell."""
        from repro.analysis.cache import CACHE_SCHEMA_VERSION

        assert CACHE_SCHEMA_VERSION >= 6

    def test_records_carry_the_events_work_metric(self):
        record = run_single("ring", 8, seed=0)
        assert record.events > 0
        assert record.events >= record.messages  # every delivery is an event

    def test_fault_distinguishes_cache_keys(self):
        a = RunSpec(family="ring", n=8, seed=0, fault="none")
        b = RunSpec(family="ring", n=8, seed=0, fault="crash_one")
        assert cache_key(a) != cache_key(b)

    def test_scheduler_distinguishes_cache_keys(self):
        a = RunSpec(family="ring", n=8, seed=0, scheduler="none")
        b = RunSpec(family="ring", n=8, seed=0, scheduler="lifo")
        assert cache_key(a) != cache_key(b)

    def test_churn_distinguishes_cache_keys(self):
        a = RunSpec(family="ring", n=8, seed=0, churn="none")
        b = RunSpec(family="ring", n=8, seed=0, churn="restart_one")
        assert cache_key(a) != cache_key(b)

    def test_replay_prefix_distinguishes_cache_keys(self):
        """The latent aliasing gap the fuzzing PR closes: two runs of
        the same instance under different replay prefixes are different
        schedules, so their records must never share a cache entry. The
        prefix rides in the scheduler spec string, which the key hashes
        verbatim — sound only because ``scheduler_from_name`` rejects
        non-canonical spellings (one schedule = one spec string)."""
        base = RunSpec(family="ring", n=8, seed=0, scheduler="replay:lifo")
        pref = RunSpec(family="ring", n=8, seed=0, scheduler="replay:lifo:3.1")
        other = RunSpec(family="ring", n=8, seed=0, scheduler="replay:lifo:3.2")
        keys = {cache_key(base), cache_key(pref), cache_key(other)}
        assert len(keys) == 3

    def test_non_canonical_replay_specs_cannot_reach_the_cache(self):
        """A second spelling of the same prefix would alias one schedule
        to two cache keys; the parser is the choke point that prevents
        it."""
        from repro.sim.scheduler import scheduler_from_name

        with pytest.raises(ValueError, match="bad replay choice"):
            scheduler_from_name("replay:lifo:03.1")  # leading zero
        with pytest.raises(ValueError, match="non-canonical"):
            scheduler_from_name("replay:random")  # spelled 'replay'

    def test_salt_distinguishes_cache_keys_and_stores(self, tmp_path):
        """A salted cache (the exploration probe's) must never serve or
        poison the unsalted store for the same spec."""
        spec = RunSpec(family="ring", n=8, seed=0)
        assert cache_key(spec) != cache_key(spec, salt="exploration-probe:1")

        record = run_single("ring", 8, seed=0)
        plain = ResultCache(tmp_path)
        salted = ResultCache(tmp_path, salt="exploration-probe:1")
        salted.put(spec, record)
        assert plain.get(spec) is None
        assert salted.get(spec) == record

    def test_algorithm_distinguishes_cache_keys(self):
        a = RunSpec(family="ring", n=8, seed=0, algorithm="blin_butelle")
        b = RunSpec(family="ring", n=8, seed=0, algorithm="fr_local")
        assert cache_key(a) != cache_key(b)

    def test_legacy_record_without_algorithm_loads_with_default(self):
        rec = run_single("gnp_sparse", 10, seed=0)
        data = rec.to_json_dict()
        del data["algorithm"]  # record saved before the registry existed
        assert RunRecord.from_json_dict(data).algorithm == "blin_butelle"

    def test_legacy_record_without_fault_loads_with_default(self):
        rec = run_single("gnp_sparse", 10, seed=0)
        data = rec.to_json_dict()
        del data["fault"]  # record saved before the fault axis existed
        del data["outcome"]
        loaded = RunRecord.from_json_dict(data)
        assert loaded.fault == "none" and loaded.ok

    def test_legacy_record_without_scheduler_loads_with_default(self):
        rec = run_single("gnp_sparse", 10, seed=0)
        data = rec.to_json_dict()
        del data["scheduler"]  # record saved before the scheduler axis
        assert RunRecord.from_json_dict(data).scheduler == "none"

    def test_legacy_record_without_churn_loads_with_default(self):
        rec = run_single("gnp_sparse", 10, seed=0)
        data = rec.to_json_dict()
        del data["churn"]  # record saved before the churn axis
        assert RunRecord.from_json_dict(data).churn == "none"
