"""Unit tests for repro.graphs.trees."""

import pytest

from repro.errors import GraphError, NotATreeError
from repro.graphs import Graph, RootedTree, tree_from_edges, tree_from_parents


@pytest.fixture
def sample():
    #       5
    #      / \
    #     3   8
    #    / \
    #   1   4
    return RootedTree(5, {3: 5, 8: 5, 1: 3, 4: 3})


class TestConstruction:
    def test_valid(self, sample):
        assert sample.root == 5
        assert sample.n == 5
        assert sample.nodes() == [1, 3, 4, 5, 8]

    def test_root_none_parent_ok(self):
        t = RootedTree(0, {0: None, 1: 0})
        assert t.parent(0) is None

    def test_nonroot_none_parent_rejected(self):
        with pytest.raises(NotATreeError):
            RootedTree(0, {1: None})

    def test_cycle_rejected(self):
        with pytest.raises(NotATreeError):
            RootedTree(0, {1: 2, 2: 1})

    def test_unknown_parent_rejected(self):
        with pytest.raises(NotATreeError):
            RootedTree(0, {1: 99})

    def test_singleton(self):
        t = RootedTree(7, {})
        assert t.n == 1 and t.degree(7) == 0
        assert t.edges() == []


class TestStructure:
    def test_parent_children(self, sample):
        assert sample.parent(1) == 3
        assert sample.parent(5) is None
        assert sample.children(5) == {3, 8}
        assert sample.children(1) == set()

    def test_unknown_node_raises(self, sample):
        with pytest.raises(GraphError):
            sample.parent(99)
        with pytest.raises(GraphError):
            sample.children(99)

    def test_edges(self, sample):
        assert sample.edges() == [(1, 3), (3, 4), (3, 5), (5, 8)]

    def test_degree(self, sample):
        assert sample.degree(5) == 2  # root: children only
        assert sample.degree(3) == 3  # parent + 2 children
        assert sample.degree(1) == 1

    def test_max_degree_and_nodes(self, sample):
        assert sample.max_degree() == 3
        assert sample.max_degree_nodes() == [3]

    def test_degree_histogram(self, sample):
        assert sample.degree_histogram() == {1: 3, 2: 1, 3: 1}

    def test_leaves(self, sample):
        assert sample.leaves() == [1, 4, 8]

    def test_depth_height(self, sample):
        assert sample.depth(5) == 0
        assert sample.depth(1) == 2
        assert sample.height() == 2

    def test_subtree(self, sample):
        assert sample.subtree(3) == {1, 3, 4}
        assert sample.subtree(5) == {1, 3, 4, 5, 8}

    def test_paths(self, sample):
        assert sample.path_to_root(1) == [1, 3, 5]
        assert sample.path(1, 8) == [1, 3, 5, 8]
        assert sample.path(1, 4) == [1, 3, 4]


class TestConversions:
    def test_parent_map_roundtrip(self, sample):
        pm = sample.parent_map()
        t2 = tree_from_parents(5, pm)
        assert t2 == sample

    def test_as_graph(self, sample):
        g = sample.as_graph()
        assert g.n == 5 and g.m == 4
        assert g.has_edge(3, 5)

    def test_rerooted_same_edges(self, sample):
        t2 = sample.rerooted(1)
        assert t2.root == 1
        assert t2.edges() == sample.edges()
        assert t2.parent(3) == 1
        assert t2.parent(5) == 3

    def test_rerooted_unknown_raises(self, sample):
        with pytest.raises(GraphError):
            sample.rerooted(42)

    def test_rerooted_degrees_preserved(self, sample):
        t2 = sample.rerooted(8)
        for u in sample.nodes():
            assert t2.degree(u) == sample.degree(u)


class TestSwap:
    def test_swapped_valid(self):
        # path 0-1-2-3 rooted at 0; add (0,3), remove (1,2)
        t = tree_from_edges(0, [(0, 1), (1, 2), (2, 3)])
        t2 = t.swapped(remove=(1, 2), add=(0, 3))
        assert sorted(t2.edges()) == [(0, 1), (0, 3), (2, 3)]
        assert t2.root == 0

    def test_swapped_invalid_disconnects(self):
        # removing an edge and adding one inside the same side disconnects
        t3 = tree_from_edges(0, [(0, 1), (1, 2), (2, 3), (3, 4)])
        with pytest.raises(NotATreeError):
            t3.swapped(remove=(0, 1), add=(3, 1))

    def test_swapped_reconnecting_is_valid(self):
        t = tree_from_edges(0, [(0, 1), (1, 2), (2, 3)])
        t2 = t.swapped(remove=(0, 1), add=(2, 0))
        assert sorted(t2.edges()) == [(0, 2), (1, 2), (2, 3)]

    def test_swapped_remove_missing(self):
        t = tree_from_edges(0, [(0, 1)])
        with pytest.raises(NotATreeError):
            t.swapped(remove=(0, 2), add=(0, 1))

    def test_swapped_add_existing(self):
        t = tree_from_edges(0, [(0, 1), (1, 2)])
        with pytest.raises(NotATreeError):
            t.swapped(remove=(0, 1), add=(1, 2))


class TestFromEdges:
    def test_valid(self):
        t = tree_from_edges(2, [(2, 0), (2, 1)])
        assert t.root == 2 and t.children(2) == {0, 1}

    def test_wrong_edge_count(self):
        with pytest.raises(NotATreeError):
            tree_from_edges(0, [(0, 1), (1, 2), (2, 0)])

    def test_disconnected(self):
        with pytest.raises(NotATreeError):
            tree_from_edges(0, [(0, 1), (2, 3), (3, 4)])

    def test_spanning_check(self):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        t = tree_from_edges(0, [(0, 1), (1, 2)])
        assert t.is_spanning_tree_of(g)
        g2 = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        assert not t.is_spanning_tree_of(g2)  # doesn't span
        t_bad = tree_from_edges(0, [(0, 3), (0, 1), (1, 2)])
        assert not t_bad.is_spanning_tree_of(g2)  # uses non-graph edge

    def test_eq_and_repr(self):
        a = tree_from_edges(0, [(0, 1)])
        b = tree_from_edges(0, [(1, 0)])
        assert a == b
        assert a != tree_from_edges(1, [(0, 1)])
        assert a != 5
        assert "RootedTree" in repr(a)
