"""Fault injection over every registered algorithm.

The paper's reliability assumption (reliable channels, non-crashing
processors) is load-bearing for the whole protocol-primitive layer:
convergecasts and wave echoes wait for *every* expected reply, so a
crashed node or a lossy link must stall the run — caught by the event
budget or the termination monitor — and never certify a corrupt tree.
These tests wrap ``crash_after`` / ``drop_messages`` around both
registered algorithms via the same ``wrap_factory`` hook the extinction
suite uses."""

import pytest

from repro.algorithms import algorithm_names, get_algorithm
from repro.algorithms.fr_local import make_fr_factory
from repro.errors import ProtocolError, TerminationError
from repro.graphs import gnp_connected, ring
from repro.mdst.algorithm import extract_final_tree
from repro.mdst.config import MDSTConfig
from repro.mdst.node import make_mdst_factory
from repro.sim import (
    Network,
    all_terminated_at_quiescence,
    crash_after,
    drop_messages,
    wrap_factory,
)
from repro.spanning import greedy_hub_tree

ALGORITHMS = sorted(algorithm_names())


def _factory_for(algorithm: str, tree):
    """The bare process factory of a registered algorithm (so faults can
    be injected below the runner's certification layer)."""
    if algorithm == "blin_butelle":
        return make_mdst_factory(tree.parent_map(), MDSTConfig())
    if algorithm == "fr_local":
        return make_fr_factory(tree.parent_map())
    raise AssertionError(f"no bare factory known for {algorithm!r}")


def _fault_run(algorithm: str, graph, tree, plan):
    factory = wrap_factory(_factory_for(algorithm, tree), plan)
    net = Network(
        graph, factory, monitors=[all_terminated_at_quiescence()]
    )
    net.run(max_events=50_000)
    return net


class TestFaultsStallLoudly:
    """A fault must surface as TerminationError (event budget) or
    ProtocolError (monitor / handshake check) — never a silent result."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_crashed_node_stalls(self, algorithm):
        g = gnp_connected(12, 0.3, seed=3)
        t = greedy_hub_tree(g)
        victim = max(g.nodes())
        with pytest.raises((ProtocolError, TerminationError)):
            _fault_run(algorithm, g, t, {victim: crash_after(0)})

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_crash_after_some_progress_stalls(self, algorithm):
        g = gnp_connected(12, 0.3, seed=3)
        t = greedy_hub_tree(g)
        victim = sorted(g.nodes())[g.n // 2]
        with pytest.raises((ProtocolError, TerminationError)):
            _fault_run(algorithm, g, t, {victim: crash_after(3)})

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_mute_root_stalls(self, algorithm):
        g = ring(8)
        t = greedy_hub_tree(g)
        with pytest.raises((ProtocolError, TerminationError)):
            _fault_run(algorithm, g, t, {t.root: drop_messages(1.0)})

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_lossy_link_never_certifies_corrupt_tree(self, algorithm):
        """Partial loss either stalls loudly or — if the drops happened to
        hit nothing critical — still yields a certified spanning tree."""
        g = gnp_connected(10, 0.35, seed=5)
        t = greedy_hub_tree(g)
        for seed in range(4):
            plan = {1: drop_messages(0.3, seed=seed)}
            try:
                net = _fault_run(algorithm, g, t, plan)
            except (ProtocolError, TerminationError):
                continue  # stalled loudly: the acceptable outcome
            final = extract_final_tree(net, g)
            assert final.is_spanning_tree_of(g)
            assert final.max_degree() <= t.max_degree()

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_no_fault_no_effect(self, algorithm):
        g = gnp_connected(10, 0.35, seed=5)
        t = greedy_hub_tree(g)
        net = _fault_run(algorithm, g, t, {})
        final = extract_final_tree(net, g)
        assert final.is_spanning_tree_of(g)

    def test_every_registered_algorithm_is_covered(self):
        """A newly registered algorithm must be added to _factory_for —
        this test fails loudly instead of silently skipping it."""
        for name in algorithm_names():
            assert get_algorithm(name) is not None
            _factory_for(name, greedy_hub_tree(ring(4)))
