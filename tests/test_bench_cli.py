"""CLI surface of the perf subsystem: golden ``repro bench --list``,
baseline recording, the regression gate (healthy pass vs committed
baseline, mutated fail), byte-identical work sections across execution
backends, and friendly error paths."""

import json
from pathlib import Path

import pytest

from repro._mutation import mutated
from repro.cli import main
from repro.perf import latest_baseline_path, load_baseline, work_bytes

REPO_ROOT = Path(__file__).resolve().parents[1]

#: golden output — update deliberately when the bench library changes
BENCH_LIST_GOLDEN = """\
bench suites:

  smoke   9 benches  seconds-scale regression gate (runs on every CI push)
  core   21 benches  the paper's t1-t9 experiment workloads + engine benches
  full   22 benches  every registered bench

benches (suites in brackets):

  batch_runner       micro  [smoke,core]  multi-seed batch execution of one cell group (8 seeds)
  cache_ops          micro  [smoke,core]  packed cache cold put_many / warm get_many (256 records)
  campaign_tiny      sweep  [smoke,core]  tiny built-in campaign incl. fault + scheduler regimes
  echo_wave          micro  [smoke,core]  one echo spanning wave, n=96 (loop-dominated hot path)
  event_queue_ops    micro  [smoke,core]  raw-tuple heap push/pop churn (the simulator inner loop)
  executor_sweep     sweep  [core]  the executor-scaling sweep (24 cells, uniform delays)
  full_protocol      micro  [smoke,core]  full MDegST protocol on G(64, 0.1) — headline events/sec
  ghs_startup        micro  [core]  GHS spanning-tree construction, the heaviest startup
  gnp_generation     micro  [core]  numpy-vectorized connected G(n, p) generation
  group_fanout       micro  [core]  group wire codec + worker-side batched execution (8 seeds)
  message_codec      micro  [smoke,core]  message encode/decode round-trip + compiled field count
  policy_queue_ops   micro  [smoke,core]  PolicyQueue eligible-head selection under a random policy
  smoke_sweep        sweep  [smoke]  both algorithms across small sparse/geometric instances
  t1_degree_quality  micro  [core]  T1: final degree vs ground truth (claim C1)
  t2_messages        sweep  [core]  T2: message complexity vs O((k-k*)·m) (claim C2)
  t3_time            sweep  [core]  T3: causal time vs O((k-k*)·n) (claim C3; T2's records)
  t4_rounds          micro  [core]  T4: rounds vs the k-k*+1 claim, concurrent vs single (C4)
  t5_lower_bound     micro  [core]  T5: messages vs the Korach-Moran-Zaks bound on K_n (C6)
  t6_initial_tree    micro  [core]  T6: startup-construction ablation (the §4.2 remark)
  t7_message_size    sweep  [core]  T7: message-size audit, ≤4 id fields per message (C5)
  t8_vs_sequential   micro  [core]  T8: distributed vs sequential local search vs full F-R
  t9_ablation        micro  [core]  T9: concurrency mode x polish phase design ablation

run with: python -m repro bench --suite smoke [--out PATH] [--compare BASELINE --gate]
"""

#: cheap CLI timing knobs for tests — work sections are unaffected
FAST = ["--repeats", "1", "--warmup", "0"]


class TestBenchList:
    def test_list_golden_output(self, capsys):
        assert main(["bench", "--list"]) == 0
        assert capsys.readouterr().out == BENCH_LIST_GOLDEN

    def test_suite_names_validated_eagerly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--suite", "nightly"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice: 'nightly'" in err
        assert "smoke" in err  # valid choices are named


class TestBenchRun:
    def test_out_writes_a_loadable_baseline(self, capsys, tmp_path):
        out = tmp_path / "BENCH_9999.json"
        rc = main(["bench", "--suite", "smoke", "--out", str(out), *FAST,
                   "--note", "test point"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "bench suite 'smoke'" in captured.out
        assert "work fingerprint:" in captured.out
        assert str(out) in captured.err
        base = load_baseline(out)
        assert base.suite == "smoke"
        assert base.notes == "test point"
        assert len(base.results) == 9
        assert base.result("full_protocol").derived["events_per_sec"] > 0

    def test_work_section_byte_identical_serial_jobs2_warm_cache(
        self, capsys, tmp_path
    ):
        """The acceptance contract: serial, ``--jobs 2`` and a warm-cache
        run all record the identical work section."""
        outs = []
        runs = [
            ["--out", str(tmp_path / "serial.json")],
            ["--jobs", "2", "--out", str(tmp_path / "jobs2.json")],
            ["--cache", str(tmp_path / "cache"),
             "--out", str(tmp_path / "cold.json")],
            ["--cache", str(tmp_path / "cache"),
             "--out", str(tmp_path / "warm.json")],
        ]
        for extra in runs:
            assert main(["bench", "--suite", "smoke", *FAST, *extra]) == 0
            capsys.readouterr()
            outs.append(work_bytes(load_baseline(extra[-1])))
        assert outs[0] == outs[1] == outs[2] == outs[3]

    def test_committed_baseline_gate_passes_on_healthy_code(self, capsys):
        """`repro bench --gate` against the committed trajectory point:
        work metrics must match exactly (time is gated separately — here
        forced off so the assertion is machine- and load-independent)."""
        committed = latest_baseline_path(REPO_ROOT)
        assert committed is not None, "a trajectory point must be committed"
        rc = main([
            "bench", "--suite", "smoke", *FAST,
            "--compare", str(committed), "--gate", "--gate-time", "off",
        ])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "gate verdict: PASS" in out
        assert "work metrics exact" in out

    def test_slow_event_loop_mutation_trips_the_gate(self, capsys, tmp_path):
        """The regression-sensitivity self-test, CLI edition: record a
        healthy baseline, re-run under the mutation, gate must fail."""
        fresh = tmp_path / "BENCH_healthy.json"
        assert main(["bench", "--suite", "smoke", "--out", str(fresh)]) == 0
        capsys.readouterr()
        with mutated("slow_event_loop"):
            rc = main([
                "bench", "--suite", "smoke",
                "--compare", str(fresh), "--gate", "--gate-time", "on",
            ])
        out = capsys.readouterr().out
        assert rc == 1, out
        assert "gate verdict: FAIL" in out
        assert "exceeds the 20% tolerance" in out
        # the mutation burns time but never changes behaviour: every
        # work verdict stays exact even while the time gate trips
        assert "work." not in "".join(
            line for line in out.splitlines() if "[fail]" in line
        )

    def test_gate_defaults_to_latest_baseline_in_cwd(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        rc = main(["bench", "--suite", "smoke", *FAST, "--gate"])
        assert rc == 2
        assert "no BENCH_*.json found" in capsys.readouterr().err
        assert main(["bench", "--suite", "smoke", *FAST,
                     "--out", "BENCH_0001.json"]) == 0
        capsys.readouterr()
        rc = main(["bench", "--suite", "smoke", *FAST,
                   "--gate", "--gate-time", "off"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "BENCH_0001.json" in out

    def test_gate_with_out_never_compares_the_run_to_itself(
        self, capsys, tmp_path, monkeypatch
    ):
        """--out into the cwd plus --gate: the default baseline must be
        the *previous* trajectory point, not the file just written."""
        monkeypatch.chdir(tmp_path)
        rc = main(["bench", "--suite", "smoke", *FAST,
                   "--out", "BENCH_0009.json", "--gate"])
        assert rc == 2  # fails fast: no prior baseline to gate against
        assert "no BENCH_*.json found" in capsys.readouterr().err
        assert not (tmp_path / "BENCH_0009.json").exists()
        assert main(["bench", "--suite", "smoke", *FAST,
                     "--out", "BENCH_0001.json"]) == 0
        capsys.readouterr()
        rc = main(["bench", "--suite", "smoke", *FAST,
                   "--out", "BENCH_0002.json", "--gate", "--gate-time", "off"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "baseline: BENCH_0001.json" in out  # not BENCH_0002

    def test_negative_tolerance_fails_fast(self, capsys):
        rc = main(["bench", "--suite", "smoke", "--tolerance", "-0.5",
                   "--compare", "whatever.json"])
        assert rc == 2
        assert "tolerance must be >= 0" in capsys.readouterr().err


class TestBenchProfile:
    def test_profile_prints_hot_functions(self, capsys):
        rc = main(["bench", "--profile", "message_codec", "--profile-lines", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "profile: bench 'message_codec' (micro)" in out
        assert "cumulative" in out  # the pstats table header

    def test_profile_unknown_bench_is_friendly(self, capsys):
        rc = main(["bench", "--profile", "nope"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown bench 'nope'" in err
        assert "full_protocol" in err  # registered names are listed


class TestBenchErrors:
    def test_missing_compare_file_is_friendly(self, capsys, tmp_path):
        rc = main(["bench", "--suite", "smoke", *FAST,
                   "--compare", str(tmp_path / "gone.json")])
        assert rc == 2
        assert "no such baseline" in capsys.readouterr().err

    def test_suite_mismatch_is_friendly(self, capsys, tmp_path):
        committed = json.loads((REPO_ROOT / "BENCH_0005.json").read_text())
        committed["suite"] = "core"
        wrong = tmp_path / "BENCH_core.json"
        wrong.write_text(json.dumps(committed))
        rc = main(["bench", "--suite", "smoke", *FAST,
                   "--compare", str(wrong)])
        assert rc == 2
        assert "records suite 'core'" in capsys.readouterr().err
