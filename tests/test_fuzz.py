"""The coverage-guided schedule fuzzer (:mod:`repro.exploration.fuzz`):
coverage map, mutation engine, campaign determinism, the planted-bug
self-test, the replay corpus, and the ``repro fuzz`` CLI."""

from pathlib import Path

import pytest

from repro._mutation import mutated
from repro.analysis.executor import ParallelExecutor, SerialExecutor
from repro.cli import main
from repro.errors import AnalysisError
from repro.exploration import (
    MUTATION_OPS,
    CoverageMap,
    ExplorationCell,
    FuzzSpec,
    artifact_bytes,
    corpus_paths,
    explore,
    explore_one,
    load_artifact,
    load_corpus_cells,
    mutate_cell,
    probe_cell,
    result_signature,
    run_fuzz,
)
from repro.rng import substream
from repro.sim.scheduler import is_replay_spec, parse_replay_spec

FUZZ_CORPUS_DIR = Path(__file__).parent / "fuzz_corpus"

#: Small deterministic campaign used across the determinism tests.
TINY = FuzzSpec(
    sizes=(6,), seeds=(0, 1), fallbacks=("random",),
    churns=("none", "restart_one"), budget=16, batch=8, seed=0,
)


class TestCoverageMap:
    def test_admits_only_new_buckets(self):
        cov = CoverageMap()
        assert cov.admit(("a", 1))
        assert not cov.admit(("a", 1))
        assert cov.admit(("b", 2))
        assert len(cov) == 2

    def test_digest_is_order_independent(self):
        a, b = CoverageMap(), CoverageMap()
        a.admit(("x",)), a.admit(("y",))
        b.admit(("y",)), b.admit(("x",))
        assert a.digest() == b.digest()
        b.admit(("z",))
        assert a.digest() != b.digest()

    def test_result_signature_excludes_the_search_coordinates(self):
        """Seed and prefix are the search space, not the behaviour: two
        cells differing only there must land in the same bucket when
        their probes behave identically."""
        base = ExplorationCell(
            family="gnp_sparse", n=6, seed=0, scheduler="replay:lifo",
            initial_method="random",
        )
        twin = base.with_(scheduler="replay:lifo:9.9")
        ra, rb = explore([base, twin])
        if tuple(r.outcome for r in ra.records) == tuple(
            r.outcome for r in rb.records
        ):
            sig_a, sig_b = result_signature(ra), result_signature(rb)
            assert sig_a[:3] == sig_b[:3]  # family, n, fallback


class TestMutationEngine:
    def test_every_operator_is_described(self):
        assert set(MUTATION_OPS) == {
            "extend", "perturb", "truncate", "splice",
            "reseed", "rechurn", "refallback",
        }
        assert all(MUTATION_OPS.values())

    def test_non_replay_bases_are_lifted_to_replay_cells(self):
        spec = FuzzSpec()
        rng = substream(0, "test:mutate")
        pool = [
            ExplorationCell(
                family="gnp_sparse", n=6, seed=0, scheduler="lifo",
                initial_method="random",
            )
        ]
        for _ in range(16):
            cell = mutate_cell(rng, pool, spec)
            assert is_replay_spec(cell.scheduler)
            _prefix, fallback = parse_replay_spec(cell.scheduler)
            assert fallback in spec.fallbacks

    def test_mutation_stream_is_deterministic(self):
        spec = FuzzSpec()
        pool = list(spec.seed_cells())[:4]

        def stream(seed):
            rng = substream(seed, "fuzz:mutate")
            return [mutate_cell(rng, pool, spec).canonical() for _ in range(24)]

        assert stream(0) == stream(0)
        assert stream(0) != stream(1)


class TestFuzzSpec:
    def test_seed_cells_cover_the_grid_with_empty_prefixes(self):
        cells = TINY.seed_cells()
        assert len(cells) == 1 * 2 * 1 * 2  # sizes x churns x fallbacks x seeds
        assert all(is_replay_spec(c.scheduler) for c in cells)
        assert all(parse_replay_spec(c.scheduler)[0] == () for c in cells)
        assert {c.churn for c in cells} == {"none", "restart_one"}

    def test_validation_is_eager_and_loud(self):
        with pytest.raises(AnalysisError, match="budget"):
            FuzzSpec(budget=0)
        with pytest.raises(AnalysisError, match="max_prefix"):
            FuzzSpec(max_prefix=0)
        with pytest.raises(AnalysisError, match="non-empty"):
            FuzzSpec(churns=())
        with pytest.raises(AnalysisError, match="churn"):
            FuzzSpec(churns=("nope",))
        with pytest.raises(AnalysisError, match="fallback"):
            FuzzSpec(fallbacks=("none",))
        with pytest.raises(AnalysisError, match="fallback"):
            FuzzSpec(fallbacks=("replay:lifo:1",))
        with pytest.raises(AnalysisError, match="unknown scheduler"):
            FuzzSpec(fallbacks=("nope",))


class TestCampaignDeterminism:
    def test_same_spec_same_report(self):
        a = run_fuzz(TINY)
        b = run_fuzz(TINY)
        assert a.corpus_digest == b.corpus_digest
        assert a.coverage_digest == b.coverage_digest
        assert a.probed == b.probed and a.rounds == b.rounds
        assert [c.canonical() for c in a.corpus] == [
            c.canonical() for c in b.corpus
        ]

    def test_serial_and_parallel_verdicts_are_byte_identical(self):
        serial = run_fuzz(TINY)
        parallel = run_fuzz(TINY, jobs=2)
        assert serial.corpus_digest == parallel.corpus_digest
        assert serial.coverage_digest == parallel.coverage_digest
        assert [artifact_bytes(r.verdict) for r in serial.failures] == [
            artifact_bytes(r.verdict) for r in parallel.failures
        ]

    def test_warm_cache_replays_identically(self, tmp_path):
        cold = run_fuzz(TINY, cache=tmp_path)
        warm = run_fuzz(TINY, cache=tmp_path)
        assert cold.corpus_digest == warm.corpus_digest
        assert cold.coverage_digest == warm.coverage_digest

    def test_different_fuzz_seed_diverges(self):
        """The mutation seed must matter — otherwise the fuzzer is a
        fixed grid with extra steps. Round zero is shared; the mutated
        rounds diverge and so does the admitted corpus."""
        import dataclasses

        a = run_fuzz(TINY)
        b = run_fuzz(dataclasses.replace(TINY, seed=7))
        assert a.probed == b.probed
        assert a.corpus_digest != b.corpus_digest


class TestPlantedBugSelfTest:
    """The fuzz PR's acceptance criterion: the churn-rejoin amnesia bug
    behind ``drop_churn_rejoin`` is found AND shrunk within a small
    budget, and the healthy protocol stays clean under the same spec."""

    def test_healthy_campaign_is_clean(self):
        report = run_fuzz(FuzzSpec(budget=32, batch=8))
        assert report.ok and not report.failures
        assert report.coverage > 0 and report.corpus

    def test_injected_bug_is_found_and_shrunk(self):
        with mutated("drop_churn_rejoin"):
            report = run_fuzz(FuzzSpec(budget=48, batch=8))
            assert not report.ok, "the fuzzer must find the planted bug"
            assert report.shrunk
            outcome = report.shrunk[0]
            assert not outcome.result.ok
            assert any(
                f.startswith("run_failed:")
                for f in outcome.result.verdict.failures
            )
            # the bug needs churn: shrinking never strips the plan
            assert outcome.cell.churn != "none"
            assert outcome.cell.n <= outcome.original.n
        # and the shrunk cell passes again once the mutation is off
        assert explore_one(outcome.cell).ok

    def test_failures_reproduce_under_the_same_mutation(self):
        with mutated("drop_churn_rejoin"):
            report = run_fuzz(FuzzSpec(budget=48, batch=8))
            again = run_fuzz(FuzzSpec(budget=48, batch=8))
        assert [r.cell.canonical() for r in report.failures] == [
            r.cell.canonical() for r in again.failures
        ]


class TestFuzzCorpus:
    """Replay-prefix artifacts under ``tests/fuzz_corpus``: every stored
    verdict must replay byte-identically (serial and ``--jobs 2``), and
    every artifact must flip under the planted churn mutation —
    otherwise it pins nothing. New artifact files join automatically."""

    def test_corpus_is_seeded_with_replay_prefix_cells(self):
        paths = corpus_paths(FUZZ_CORPUS_DIR)
        assert len(paths) >= 2, "fuzz corpus must hold at least 2 artifacts"
        cells = [load_artifact(p)[0] for p in paths]
        assert all(is_replay_spec(c.scheduler) for c in cells)
        assert all(c.churn != "none" for c in cells)
        # at least one artifact's prefix is load-bearing (non-empty)
        assert any(parse_replay_spec(c.scheduler)[0] for c in cells)

    def test_load_corpus_cells_orders_deterministically(self):
        cells = load_corpus_cells(FUZZ_CORPUS_DIR)
        assert len(cells) == len(corpus_paths(FUZZ_CORPUS_DIR))
        assert cells == load_corpus_cells(FUZZ_CORPUS_DIR)

    @pytest.mark.parametrize(
        "path", corpus_paths(FUZZ_CORPUS_DIR), ids=lambda p: p.stem
    )
    def test_replay_is_byte_identical_serial_and_parallel(self, path):
        cell, stored, _note = load_artifact(path)
        serial = explore([cell], executor=SerialExecutor(probe_cell))[0]
        parallel = explore([cell], executor=ParallelExecutor(2, probe_cell))[0]
        assert artifact_bytes(serial.verdict) == artifact_bytes(stored)
        assert artifact_bytes(parallel.verdict) == artifact_bytes(stored)

    @pytest.mark.parametrize(
        "path", corpus_paths(FUZZ_CORPUS_DIR), ids=lambda p: p.stem
    )
    def test_corpus_artifacts_are_regression_sensitive(self, path):
        cell, stored, _note = load_artifact(path)
        assert stored.ok
        with mutated("drop_churn_rejoin"):
            assert not explore_one(cell).ok

    def test_campaign_seeds_from_the_corpus(self):
        spec = FuzzSpec(
            sizes=(6,), seeds=(0,), fallbacks=("lifo",),
            churns=("restart_one",), budget=8, batch=8,
        )
        seeded = run_fuzz(spec, seed_corpus=load_corpus_cells(FUZZ_CORPUS_DIR))
        assert seeded.ok
        probed_keys = {c.canonical() for c in seeded.corpus}
        # the corpus cells were actually probed (they are healthy and
        # behaviourally distinct, so at least one lands in coverage)
        assert any(
            cell.canonical() in probed_keys
            for cell in load_corpus_cells(FUZZ_CORPUS_DIR)
        )


class TestFuzzCLI:
    def test_list_prints_operators_plans_and_defaults(self, capsys):
        rc = main(["fuzz", "--list"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "mutation operators:" in out
        for op in MUTATION_OPS:
            assert op in out
        assert "churn plans:" in out and "restart_one" in out
        assert "fallback policies:" in out and "lifo" in out
        assert "defaults:" in out and "budget=" in out

    def test_healthy_run_is_clean(self, capsys, tmp_path):
        rc = main([
            "fuzz", "--budget", "16", "--batch", "8", "--sizes", "6",
            "--seeds", "0", "1", "--fallbacks", "random",
            "--churns", "none", "restart_one",
            "--out", str(tmp_path / "cex"),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 failure(s)" in out
        assert "coverage digest:" in out
        assert not (tmp_path / "cex").exists()

    def test_mutated_run_finds_shrinks_and_saves(self, capsys, tmp_path):
        out_dir = tmp_path / "cex"
        with mutated("drop_churn_rejoin"):
            rc = main([
                "fuzz", "--budget", "48", "--batch", "8",
                "--out", str(out_dir),
            ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "counterexample:" in out and "shrunk" in out
        artifacts = corpus_paths(out_dir)
        assert artifacts
        for path in artifacts:
            _cell, verdict, note = load_artifact(path)
            assert not verdict.ok
            assert "repro fuzz" in note

    def test_corpus_seeding_via_flag(self, capsys, tmp_path):
        rc = main([
            "fuzz", "--budget", "8", "--batch", "8", "--sizes", "6",
            "--seeds", "0", "--fallbacks", "lifo", "--churns", "restart_one",
            "--corpus", str(FUZZ_CORPUS_DIR),
            "--out", str(tmp_path / "cex"),
        ])
        assert rc == 0
        assert "coverage digest:" in capsys.readouterr().out
