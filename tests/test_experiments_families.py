"""Tests for the new graph families and the experiment presets."""

import pytest

from repro.analysis import EXPERIMENTS, run_experiment
from repro.cli import main
from repro.errors import AnalysisError, GraphError
from repro.graphs import (
    barbell,
    circulant,
    complete_bipartite,
    is_connected,
    make_family,
    min_degree_lower_bound,
)
from repro.mdst import run_mdst
from repro.sequential import optimal_degree
from repro.spanning import greedy_hub_tree


class TestCompleteBipartite:
    def test_structure(self):
        g = complete_bipartite(2, 5)
        assert g.n == 7 and g.m == 10
        assert is_connected(g)
        assert g.degree(0) == 5 and g.degree(3) == 2

    def test_validation(self):
        with pytest.raises(GraphError):
            complete_bipartite(0, 3)

    def test_forced_degree_optimum(self):
        # K_{2,6}: 7 tree edges land on 2 left nodes -> some left node
        # has tree degree >= ceil(7/2) = 4... actually >= 3 by pigeonhole
        g = complete_bipartite(2, 6)
        opt = optimal_degree(g)
        assert opt >= 3  # far above the trivial 2
        res = run_mdst(g, greedy_hub_tree(g))
        assert res.final_degree <= opt + 1

    def test_star_case(self):
        g = complete_bipartite(1, 5)
        assert min_degree_lower_bound(g) == 5


class TestBarbell:
    def test_structure(self):
        g = barbell(4, 2)
        assert g.n == 10
        assert is_connected(g)
        # bridge nodes are cut vertices with degree 2
        assert g.degree(4) == 2 and g.degree(5) == 2

    def test_validation(self):
        with pytest.raises(GraphError):
            barbell(2, 1)

    def test_mdst_runs(self):
        g = barbell(5, 3)
        res = run_mdst(g, greedy_hub_tree(g), check_invariants=True)
        assert res.final_tree.is_spanning_tree_of(g)


class TestCirculant:
    def test_structure(self):
        g = circulant(8, (1, 2))
        assert g.n == 8
        assert all(g.degree(u) == 4 for u in g.nodes())
        assert is_connected(g)

    def test_validation(self):
        with pytest.raises(GraphError):
            circulant(2)
        with pytest.raises(GraphError):
            circulant(5, (0,))
        with pytest.raises(GraphError):
            circulant(5, ())

    def test_hamiltonian_so_optimal_two(self):
        g = circulant(10, (1, 3))
        assert optimal_degree(g) == 2

    def test_mdst_reaches_low_degree(self):
        g = circulant(12, (1, 2, 3))
        res = run_mdst(g, greedy_hub_tree(g))
        assert res.final_degree <= 3


class TestFamilyRegistry:
    @pytest.mark.parametrize("name", ["bipartite", "barbell", "circulant"])
    def test_registered(self, name):
        g = make_family(name, 18, seed=0)
        assert is_connected(g)


class TestExperimentPresets:
    def test_all_presets_listed(self):
        assert set(EXPERIMENTS) == {"t1", "t2", "t3", "t4", "t5", "t6", "t8"}

    def test_unknown_raises(self):
        with pytest.raises(AnalysisError):
            run_experiment("t99")
        with pytest.raises(AnalysisError):
            run_experiment("t1", scale=0)

    def test_t1_preset(self):
        text, payload = run_experiment("t1")
        assert "T1" in text
        assert all(payload["holds"])

    def test_t2_preset(self):
        text, payload = run_experiment("t2")
        assert payload["fit"].r_squared > 0.9

    def test_t4_preset(self):
        text, payload = run_experiment("t4")
        for claim, conc, single in payload["rows"]:
            assert conc <= 2 * claim + 2

    def test_t5_preset(self):
        text, payload = run_experiment("t5")
        assert all(r > 1 for r in payload["ratios"])  # above the bound

    def test_t6_preset(self):
        text, payload = run_experiment("t6")
        res = payload["results"]
        assert res["dfs"].messages <= res["greedy_hub"].messages

    def test_t8_preset(self):
        text, payload = run_experiment("t8")
        assert all(0 <= g <= 1 for g in payload["gaps"])

    def test_cli_experiment(self, capsys):
        assert main(["experiment", "t5"]) == 0
        assert "Korach" in capsys.readouterr().out
