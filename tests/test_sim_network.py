"""Unit tests for the network engine, delays, channels, monitors."""

from dataclasses import dataclass

import pytest

from repro.errors import (
    ChannelError,
    ProtocolError,
    SimulationError,
    TerminationError,
)
from repro.graphs import Graph, path_graph, ring
from repro.sim import (
    ExponentialDelay,
    Message,
    Network,
    PerLinkDelay,
    Process,
    TraceRecorder,
    UniformDelay,
    UnitDelay,
    all_terminated_at_quiescence,
    bounded_in_flight,
    delay_model_from_name,
    format_trace,
    parent_pointers_form_forest,
)


@dataclass(frozen=True, slots=True)
class Ping(Message):
    hop: int


@dataclass(frozen=True, slots=True)
class Tag(Message):
    value: int


class Flooder(Process):
    """Flood a token once; records who it heard from."""

    def __init__(self, ctx):
        super().__init__(ctx)
        self.heard: list[int] = []
        self.seen = False

    def on_start(self):
        if self.node_id == 0 and not self.seen:
            self.seen = True
            for v in self.neighbors:
                self.send(v, Ping(hop=0))
            self.halt()

    def on_message(self, sender, msg):
        self.heard.append(sender)
        if not self.seen:
            self.seen = True
            for v in self.neighbors:
                if v != sender:
                    self.send(v, Ping(hop=msg.hop + 1))
            self.halt()


class TestBasicRun:
    def test_flood_reaches_everyone(self):
        g = ring(8)
        net = Network(g, Flooder)
        report = net.run()
        assert report.quiescent
        assert all(net.node(u).seen for u in g.nodes())

    def test_message_accounting(self):
        g = path_graph(4)  # 0-1-2-3
        net = Network(g, Flooder)
        report = net.run()
        # 0->1, 1->2, 2->3 : 3 Pings
        assert report.total_messages == 3
        assert report.by_type == {"Ping": 3}
        assert report.max_id_fields == 1
        assert report.total_bits == 3 * (5 + 1 * 2)  # n=4 -> 2 bits/field

    def test_causal_time_on_path(self):
        g = path_graph(5)
        report = Network(g, Flooder).run()
        assert report.causal_time == 4  # chain of 4 messages

    def test_empty_graph_rejected(self):
        with pytest.raises(SimulationError):
            Network(Graph(), Flooder)

    def test_unknown_node_lookup(self):
        net = Network(path_graph(2), Flooder)
        with pytest.raises(SimulationError):
            net.node(99)

    def test_send_to_non_neighbor_rejected(self):
        class Bad(Process):
            def on_start(self):
                if self.node_id == 0:
                    self.send(2, Ping(hop=0))

            def on_message(self, sender, msg):
                pass

        net = Network(path_graph(3), Bad)  # 0 and 2 not adjacent
        with pytest.raises(ChannelError):
            net.run()

    def test_non_message_payload_rejected(self):
        class Bad(Process):
            def on_start(self):
                if self.node_id == 0:
                    self.ctx._send(0, 1, "nope")

            def on_message(self, sender, msg):
                pass

        with pytest.raises(SimulationError):
            Network(path_graph(2), Bad).run()

    def test_event_budget(self):
        class Chatter(Process):
            def on_start(self):
                self.send(self.neighbors[0], Ping(hop=0))

            def on_message(self, sender, msg):
                self.send(sender, Ping(hop=msg.hop + 1))

        net = Network(path_graph(2), Chatter)
        with pytest.raises(TerminationError):
            net.run(max_events=100)

    def test_start_times(self):
        g = path_graph(2)
        net = Network(g, Flooder, start_times={0: 5.0})
        report = net.run()
        assert report.sim_time >= 6.0  # started at 5, delivery at >= 6

    def test_start_times_unknown_node(self):
        with pytest.raises(SimulationError):
            Network(path_graph(2), Flooder, start_times={9: 1.0})


class TestFIFO:
    def test_fifo_order_under_random_delays(self):
        """Messages on one link must arrive in send order for every model."""

        class Burst(Process):
            def __init__(self, ctx):
                super().__init__(ctx)
                self.received: list[int] = []

            def on_start(self):
                if self.node_id == 0:
                    for i in range(50):
                        self.send(1, Tag(value=i))
                self.halt()

            def on_message(self, sender, msg):
                self.received.append(msg.value)

        for model in (UnitDelay(), UniformDelay(), ExponentialDelay(), PerLinkDelay()):
            net = Network(path_graph(2), Burst, delay=model, seed=7)
            net.run()
            got = net.node(1).received
            assert got == sorted(got), f"FIFO violated by {model.name}"


class TestDeterminism:
    def _run(self, seed):
        net = Network(ring(10), Flooder, delay=UniformDelay(), seed=seed)
        report = net.run()
        return report.total_messages, report.sim_time, report.causal_time

    def test_same_seed_same_run(self):
        assert self._run(3) == self._run(3)

    def test_different_seed_different_schedule(self):
        # message counts can coincide; sim_time almost surely differs
        assert self._run(3)[1] != self._run(4)[1]


class TestDelays:
    def test_unit(self):
        m = UnitDelay()
        m.bind(0)
        assert m.sample(0, 1) == 1.0

    def test_uniform_range_and_validation(self):
        m = UniformDelay(0.5, 2.0)
        m.bind(1)
        xs = [m.sample(0, 1) for _ in range(100)]
        assert all(0.5 <= x <= 2.0 for x in xs)
        with pytest.raises(ValueError):
            UniformDelay(0, 1)

    def test_exponential_positive(self):
        m = ExponentialDelay(0.5)
        m.bind(2)
        assert all(m.sample(0, 1) > 0 for _ in range(100))
        with pytest.raises(ValueError):
            ExponentialDelay(0)

    def test_perlink_fixed_per_link(self):
        m = PerLinkDelay(1.0, 5.0)
        m.bind(3)
        a1 = m.sample(0, 1)
        a2 = m.sample(0, 1)
        b = m.sample(1, 0)
        assert a1 == a2
        assert a1 != b  # directed links independent (a.s.)
        with pytest.raises(ValueError):
            PerLinkDelay(2.0, 1.0)

    def test_factory(self):
        assert isinstance(delay_model_from_name("unit"), UnitDelay)
        with pytest.raises(ValueError):
            delay_model_from_name("warp")


class TestTrace:
    def test_records_send_and_deliver(self):
        tr = TraceRecorder()
        net = Network(path_graph(3), Flooder, trace=tr)
        net.run()
        actions = {r.action for r in tr.records}
        assert "send" in actions and "deliver" in actions and "start" in actions
        text = format_trace(tr)
        assert "Ping" in text

    def test_capacity_bound(self):
        tr = TraceRecorder(capacity=2)
        net = Network(ring(6), Flooder, trace=tr)
        net.run()
        assert len(tr) == 2
        assert tr.dropped > 0
        assert "dropped" in format_trace(tr)

    def test_predicate_filter(self):
        tr = TraceRecorder(predicate=lambda r: r.action == "send")
        Network(path_graph(3), Flooder, trace=tr).run()
        assert all(r.action == "send" for r in tr.records)

    def test_of_type_and_between(self):
        tr = TraceRecorder()
        Network(path_graph(3), Flooder, trace=tr).run()
        assert len(tr.of_type("Ping")) > 0
        assert tr.between(0.0, 0.5) == [r for r in tr.records if r.time <= 0.5]

    def test_note(self):
        tr = TraceRecorder()
        tr.note(1.0, "hello")
        assert "hello" in format_trace(tr)


class TestMonitors:
    def test_all_terminated_passes(self):
        net = Network(
            ring(5), Flooder, monitors=[all_terminated_at_quiescence()]
        )
        net.run()  # should not raise

    def test_all_terminated_fails(self):
        class Lazy(Flooder):
            def on_message(self, sender, msg):
                super().on_message(sender, msg)
                self.terminated = False  # pretend we never decided

        net = Network(ring(5), Lazy, monitors=[all_terminated_at_quiescence()])
        with pytest.raises(ProtocolError):
            net.run()

    def test_bounded_in_flight_fails_on_storm(self):
        class Storm(Process):
            def on_start(self):
                if self.node_id == 0:
                    for _ in range(100):
                        self.send(1, Ping(hop=0))

            def on_message(self, sender, msg):
                pass

        net = Network(
            path_graph(2), Storm, monitors=[bounded_in_flight(10)], monitor_interval=1
        )
        with pytest.raises(ProtocolError):
            net.run()

    def test_parent_forest_monitor(self):
        class WithParent(Flooder):
            def __init__(self, ctx):
                super().__init__(ctx)
                self.parent = None

            def on_message(self, sender, msg):
                super().on_message(sender, msg)
                self.parent = sender

        net = Network(
            path_graph(4), WithParent, monitors=[parent_pointers_form_forest()]
        )
        net.run()  # chain 3->2->1->0: a forest, fine

    def test_parent_cycle_detected(self):
        class Cycler(Process):
            def __init__(self, ctx):
                super().__init__(ctx)
                # 2-cycle between nodes 0 and 1 from the start
                self.parent = 1 if ctx.node_id == 0 else (0 if ctx.node_id == 1 else None)

            def on_start(self):
                self.halt()

            def on_message(self, sender, msg):
                pass

        net = Network(
            path_graph(3), Cycler, monitors=[parent_pointers_form_forest()]
        )
        with pytest.raises(ProtocolError):
            net.run()


class TestContext:
    def test_now_and_mark(self):
        class Clocky(Process):
            def on_start(self):
                self.ctx.mark("phase", self.node_id)
                assert self.ctx.now() == 0.0
                self.halt()

            def on_message(self, sender, msg):
                pass

        net = Network(path_graph(2), Clocky)
        report = net.run()
        labels = [m[1] for m in report.marks]
        assert labels.count("phase") == 2

    def test_report_summary_renders(self):
        report = Network(ring(4), Flooder).run()
        s = report.summary()
        assert "messages=" in s and "causal_time=" in s
