"""Unit tests for repro.graphs.generators."""

import pytest

from repro.errors import GraphError
from repro.graphs import (
    FAMILIES,
    caterpillar_graph,
    complete,
    gnp_connected,
    grid,
    hamiltonian_padded,
    hypercube,
    is_connected,
    lollipop,
    make_family,
    path_graph,
    preferential_attachment,
    random_geometric,
    random_regular,
    random_tree,
    ring,
    spider,
    star,
    torus,
    wheel,
)


class TestDeterministicFamilies:
    def test_complete(self):
        g = complete(5)
        assert g.n == 5 and g.m == 10
        assert g.max_degree() == 4

    def test_ring(self):
        g = ring(6)
        assert g.n == 6 and g.m == 6
        assert all(g.degree(u) == 2 for u in g.nodes())
        with pytest.raises(GraphError):
            ring(2)

    def test_path(self):
        g = path_graph(4)
        assert g.m == 3 and g.degree(0) == 1 and g.degree(1) == 2

    def test_star(self):
        g = star(7)
        assert g.degree(0) == 6
        assert all(g.degree(u) == 1 for u in range(1, 7))
        with pytest.raises(GraphError):
            star(1)

    def test_wheel(self):
        g = wheel(6)
        assert g.degree(0) == 5
        assert all(g.degree(u) == 3 for u in range(1, 6))
        with pytest.raises(GraphError):
            wheel(3)

    def test_grid(self):
        g = grid(3, 4)
        assert g.n == 12 and g.m == 3 * 3 + 2 * 4
        assert is_connected(g)
        with pytest.raises(GraphError):
            grid(0, 3)

    def test_torus(self):
        g = torus(3, 3)
        assert g.n == 9
        assert all(g.degree(u) == 4 for u in g.nodes())
        with pytest.raises(GraphError):
            torus(2, 5)

    def test_hypercube(self):
        g = hypercube(3)
        assert g.n == 8 and g.m == 12
        assert all(g.degree(u) == 3 for u in g.nodes())
        with pytest.raises(GraphError):
            hypercube(0)

    def test_caterpillar(self):
        g = caterpillar_graph(4, 2)
        assert g.n == 4 * 3
        assert is_connected(g)
        # spine node interior degree at least legs + 2
        assert g.degree(1) >= 4
        with pytest.raises(GraphError):
            caterpillar_graph(1, 1)

    def test_spider(self):
        g = spider(4, 3)
        assert g.n == 1 + 4 * 3
        assert g.degree(0) == 4
        assert is_connected(g)
        with pytest.raises(GraphError):
            spider(2, 1)

    def test_lollipop(self):
        g = lollipop(4, 3)
        assert g.n == 7
        assert is_connected(g)
        assert g.degree(6) == 1
        with pytest.raises(GraphError):
            lollipop(2, 1)


class TestRandomFamilies:
    @pytest.mark.parametrize("n,p", [(10, 0.0), (10, 0.2), (20, 0.5), (5, 1.0)])
    def test_gnp_connected(self, n, p):
        g = gnp_connected(n, p, seed=42)
        assert g.n == n
        assert is_connected(g)

    def test_gnp_reproducible(self):
        a = gnp_connected(15, 0.3, seed=1)
        b = gnp_connected(15, 0.3, seed=1)
        c = gnp_connected(15, 0.3, seed=2)
        assert a == b
        assert a != c or a.edges() != c.edges()  # overwhelmingly different

    def test_gnp_bad_p(self):
        with pytest.raises(GraphError):
            gnp_connected(5, 1.5, seed=0)

    def test_geometric(self):
        g = random_geometric(25, 0.35, seed=3)
        assert g.n == 25 and is_connected(g)
        assert random_geometric(25, 0.35, seed=3) == g

    def test_geometric_bad_radius(self):
        with pytest.raises(GraphError):
            random_geometric(5, 0.0, seed=0)

    def test_random_regular(self):
        g = random_regular(12, 4, seed=5)
        assert all(g.degree(u) == 4 for u in g.nodes())
        assert is_connected(g)

    def test_random_regular_invalid(self):
        with pytest.raises(GraphError):
            random_regular(5, 5, seed=0)
        with pytest.raises(GraphError):
            random_regular(5, 3, seed=0)  # odd n*d
        with pytest.raises(GraphError):
            random_regular(8, 1, seed=0)

    def test_preferential_attachment(self):
        g = preferential_attachment(30, 2, seed=7)
        assert g.n == 30 and is_connected(g)
        assert g.m == 3 + (30 - 3) * 2
        with pytest.raises(GraphError):
            preferential_attachment(3, 3, seed=0)

    def test_hamiltonian_padded(self):
        g = hamiltonian_padded(20, 10, seed=9)
        assert g.n == 20 and is_connected(g)
        assert g.m >= 19
        assert hamiltonian_padded(20, 10, seed=9) == g

    def test_hamiltonian_padded_cap(self):
        # asking for more chords than exist must not loop forever
        g = hamiltonian_padded(5, 100, seed=0)
        assert g.m <= 10

    def test_random_tree(self):
        g = random_tree(12, seed=11)
        assert g.n == 12 and g.m == 11 and is_connected(g)
        assert random_tree(12, seed=11) == g

    def test_random_tree_tiny(self):
        assert random_tree(1, seed=0).n == 1
        assert random_tree(2, seed=0).m == 1


class TestRegistry:
    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_all_families_connected(self, name):
        g = make_family(name, 16, seed=1)
        assert is_connected(g)
        assert g.n >= 8  # shape parameters may round n a little

    def test_unknown_family(self):
        with pytest.raises(GraphError):
            make_family("nope", 10)
