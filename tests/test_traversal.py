"""Unit tests for repro.graphs.traversal."""

import pytest

from repro.errors import GraphError, NotConnectedError
from repro.graphs import (
    Graph,
    bfs_layers,
    bfs_order,
    bfs_parents,
    connected_components,
    dfs_order,
    dfs_parents,
    diameter,
    eccentricity,
    is_connected,
    path_graph,
    ring,
    shortest_path_lengths,
    tree_path,
)


@pytest.fixture
def diamond():
    #   0
    #  / \
    # 1   2
    #  \ /
    #   3 - 4
    return Graph(edges=[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])


class TestBFS:
    def test_order_deterministic(self, diamond):
        assert bfs_order(diamond, 0) == [0, 1, 2, 3, 4]

    def test_parents_structure(self, diamond):
        p = bfs_parents(diamond, 0)
        assert p[0] is None
        assert p[3] == 1  # smallest-id parent wins
        assert p[4] == 3

    def test_layers(self, diamond):
        assert bfs_layers(diamond, 0) == [[0], [1, 2], [3], [4]]

    def test_unknown_source(self, diamond):
        with pytest.raises(GraphError):
            bfs_order(diamond, 99)

    def test_unreachable_nodes_absent(self):
        g = Graph(nodes=[0, 1], edges=[])
        assert bfs_order(g, 0) == [0]
        assert 1 not in bfs_parents(g, 0)


class TestDFS:
    def test_order_prefers_small_ids(self, diamond):
        assert dfs_order(diamond, 0) == [0, 1, 3, 2, 4]

    def test_parents_is_tree(self, diamond):
        p = dfs_parents(diamond, 0)
        assert p[0] is None
        assert len(p) == 5
        # every non-root parent chain terminates at 0
        for u in p:
            cur = u
            for _ in range(10):
                if cur == 0:
                    break
                cur = p[cur]
            assert cur == 0


class TestComponentsConnectivity:
    def test_single_component(self, diamond):
        assert connected_components(diamond) == [{0, 1, 2, 3, 4}]
        assert is_connected(diamond)

    def test_multiple_components(self):
        g = Graph(edges=[(0, 1), (2, 3)])
        g.add_node(4)
        comps = connected_components(g)
        assert comps == [{0, 1}, {2, 3}, {4}]
        assert not is_connected(g)

    def test_empty_not_connected(self):
        assert not is_connected(Graph())

    def test_singleton_connected(self):
        assert is_connected(Graph(nodes=[0]))


class TestDistances:
    def test_shortest_paths(self, diamond):
        d = shortest_path_lengths(diamond, 0)
        assert d == {0: 0, 1: 1, 2: 1, 3: 2, 4: 3}

    def test_eccentricity_and_diameter(self):
        g = path_graph(5)
        assert eccentricity(g, 0) == 4
        assert eccentricity(g, 2) == 2
        assert diameter(g) == 4
        assert diameter(ring(6)) == 3

    def test_eccentricity_disconnected_raises(self):
        g = Graph(nodes=[0, 1])
        with pytest.raises(NotConnectedError):
            eccentricity(g, 0)


class TestTreePath:
    def test_path_through_lca(self):
        parents = {0: None, 1: 0, 2: 0, 3: 1, 4: 2}
        assert tree_path(parents, 3, 4) == [3, 1, 0, 2, 4]

    def test_path_to_self(self):
        parents = {0: None, 1: 0}
        assert tree_path(parents, 1, 1) == [1]

    def test_path_ancestor(self):
        parents = {0: None, 1: 0, 2: 1}
        assert tree_path(parents, 2, 0) == [2, 1, 0]
        assert tree_path(parents, 0, 2) == [0, 1, 2]

    def test_unknown_node_raises(self):
        with pytest.raises(GraphError):
            tree_path({0: None}, 0, 9)
