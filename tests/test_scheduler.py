"""Scheduler-policy subsystem: policies, the policy queue, and the
network integration (the exploration PR's tentpole axis)."""

import pytest

from repro.errors import SchedulingError
from repro.graphs.generators import gnp_connected, make_family
from repro.mdst.algorithm import run_mdst
from repro.mdst.config import MDSTConfig
from repro.sim import (
    NO_SCHEDULER,
    EventKind,
    FifoScheduler,
    LifoScheduler,
    Network,
    PolicyQueue,
    RandomScheduler,
    ReplayScheduler,
    SchedulerPolicy,
    StarveNodeScheduler,
    register_scheduler,
    scheduler_from_name,
    scheduler_names,
)
from repro.sim.scheduler import (
    REPLAY_PREFIX_MAX,
    is_replay_spec,
    parse_replay_spec,
    replay_spec,
)
from repro.sim.messages import Message
from repro.sim.node import Process
from repro.spanning.provider import build_spanning_tree


class Ping(Message):
    pass


class TestRegistry:
    def test_names_include_none_and_builtins(self):
        names = scheduler_names()
        assert NO_SCHEDULER in names
        assert {"fifo", "lifo", "random", "starve"} <= set(names)
        assert names == tuple(sorted(names))

    def test_none_maps_to_no_policy(self):
        assert scheduler_from_name(NO_SCHEDULER) is None

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            scheduler_from_name("typo")

    def test_register_rejects_bad_and_duplicate_names(self):
        with pytest.raises(ValueError):
            register_scheduler("", FifoScheduler)
        with pytest.raises(ValueError):
            register_scheduler(NO_SCHEDULER, FifoScheduler)
        with pytest.raises(ValueError):
            register_scheduler("fifo", FifoScheduler)

    def test_register_and_replace(self):
        class Custom(FifoScheduler):
            pass

        register_scheduler("custom_test", Custom)
        try:
            assert "custom_test" in scheduler_names()
            assert isinstance(scheduler_from_name("custom_test"), Custom)
            register_scheduler("custom_test", Custom, replace=True)
        finally:
            from repro.sim import scheduler as sched_mod

            del sched_mod._SCHEDULER_FACTORIES["custom_test"]


class TestPolicies:
    HEADS = ((3, 1, 0), (7, 2, 1), (9, 0, -1))

    def test_fifo_picks_oldest(self):
        assert FifoScheduler().choose(self.HEADS) == 0

    def test_lifo_picks_newest(self):
        assert LifoScheduler().choose(self.HEADS) == 2

    def test_starve_defers_victim(self):
        pol = StarveNodeScheduler()
        pol.victim = 1
        assert pol.choose(self.HEADS) == 1  # first head targets victim 1
        pol.victim = 2
        assert pol.choose(self.HEADS) == 0
        # only victim-targeted heads left: oldest first
        pol.victim = 5
        assert pol.choose(((4, 5, 0), (6, 5, 1))) == 0

    def test_random_is_deterministic_in_seed_and_n(self):
        a, b = RandomScheduler(), RandomScheduler()
        a.bind(7, 10)
        b.bind(7, 10)
        picks_a = [a.choose(self.HEADS) for _ in range(50)]
        picks_b = [b.choose(self.HEADS) for _ in range(50)]
        assert picks_a == picks_b
        c = RandomScheduler()
        c.bind(8, 10)
        assert [c.choose(self.HEADS) for _ in range(50)] != picks_a

    def test_starve_victim_deterministic_and_in_range(self):
        for n in (1, 2, 7):
            for seed in (0, 3):
                a, b = StarveNodeScheduler(), StarveNodeScheduler()
                a.bind(seed, n)
                b.bind(seed, n)
                assert a.victim == b.victim
                assert 0 <= a.victim < n


class TestReplayScheduler:
    HEADS = ((3, 1, 0), (7, 2, 1), (9, 0, -1))

    def test_prefix_choices_are_respected(self):
        pol = ReplayScheduler((0, 2, 1), "fifo")
        pol.bind(0, 4)
        assert [pol.choose(self.HEADS) for _ in range(3)] == [0, 2, 1]

    def test_out_of_range_choices_reduce_modulo_head_count(self):
        # every int denotes an admissible pick — mutation engines never
        # have to validate against the live head count
        pol = ReplayScheduler((3, 7, 100), "fifo")
        pol.bind(0, 4)
        assert [pol.choose(self.HEADS) for _ in range(3)] == [0, 1, 1]

    def test_fallback_takes_over_after_the_prefix(self):
        pol = ReplayScheduler((1,), "lifo")
        pol.bind(0, 4)
        assert pol.choose(self.HEADS) == 1  # recorded head
        assert pol.choose(self.HEADS) == 2  # lifo tail: newest

    def test_bind_resets_the_cursor(self):
        pol = ReplayScheduler((2, 0), "fifo")
        pol.bind(5, 4)
        first = [pol.choose(self.HEADS) for _ in range(4)]
        pol.bind(5, 4)
        assert [pol.choose(self.HEADS) for _ in range(4)] == first

    def test_deterministic_in_prefix_fallback_seed_n(self):
        a = ReplayScheduler((4, 4), "random")
        b = ReplayScheduler((4, 4), "random")
        a.bind(9, 6)
        b.bind(9, 6)
        picks_a = [a.choose(self.HEADS) for _ in range(30)]
        picks_b = [b.choose(self.HEADS) for _ in range(30)]
        assert picks_a == picks_b

    def test_constructor_rejects_bad_prefixes_and_fallbacks(self):
        with pytest.raises(ValueError, match="unknown replay fallback"):
            ReplayScheduler((), "typo")
        with pytest.raises(ValueError, match="unknown replay fallback"):
            ReplayScheduler((), NO_SCHEDULER)
        with pytest.raises(ValueError, match="non-negative"):
            ReplayScheduler((3, -1), "fifo")
        with pytest.raises(ValueError, match="longer than"):
            ReplayScheduler((0,) * (REPLAY_PREFIX_MAX + 1), "fifo")

    def test_spec_round_trips(self):
        for prefix, fallback in (
            ((), "random"),
            ((), "lifo"),
            ((3, 1, 0), "fifo"),
            ((0, 64, 7), "starve"),
        ):
            spec = replay_spec(prefix, fallback)
            assert is_replay_spec(spec)
            assert parse_replay_spec(spec) == (prefix, fallback)
            pol = scheduler_from_name(spec)
            assert isinstance(pol, ReplayScheduler)
            assert pol.prefix == prefix
            assert pol.fallback == fallback
            assert pol.name == spec

    def test_parser_rejects_non_canonical_spellings(self):
        # the spec string is the schedule's identity in cache keys and
        # corpus artifacts, so every spelling must be unique
        with pytest.raises(ValueError, match="bad replay choice"):
            parse_replay_spec("replay:lifo:03.1")
        with pytest.raises(ValueError, match="bad replay choice"):
            parse_replay_spec("replay:lifo:3..1")
        with pytest.raises(ValueError, match="bad replay choice"):
            parse_replay_spec("replay:lifo:-3")
        with pytest.raises(ValueError, match="non-canonical"):
            parse_replay_spec("replay:random")
        with pytest.raises(ValueError, match="empty prefix omits the tail"):
            parse_replay_spec("replay:lifo:")
        with pytest.raises(ValueError, match="bad replay fallback"):
            parse_replay_spec("replay:none:3")
        with pytest.raises(ValueError, match="bad replay fallback"):
            parse_replay_spec("replay:replay:3")
        with pytest.raises(ValueError, match="not a replay scheduler spec"):
            parse_replay_spec("fifo")

    def test_registry_exposes_the_bare_policy(self):
        assert "replay" in scheduler_names()
        pol = scheduler_from_name("replay")
        assert isinstance(pol, ReplayScheduler)
        assert pol.prefix == () and pol.fallback == "random"


class TestPolicyQueue:
    def _queue(self, policy=None):
        return PolicyQueue(policy or FifoScheduler())

    def test_per_link_fifo_is_structural(self):
        """Even a newest-first policy cannot reorder two messages on the
        same directed link."""
        q = self._queue(LifoScheduler())
        first = Ping()
        second = Ping()
        q.push_raw(0.0, EventKind.DELIVER, 1, 0, first, 1)
        q.push_raw(0.0, EventKind.DELIVER, 1, 0, second, 2)
        assert q.pop_raw()[5] is first
        assert q.pop_raw()[5] is second

    def test_lifo_reorders_across_links(self):
        q = self._queue(LifoScheduler())
        old = Ping()
        new = Ping()
        q.push_raw(0.0, EventKind.DELIVER, 1, 0, old, 1)
        q.push_raw(0.0, EventKind.DELIVER, 2, 0, new, 1)
        assert q.pop_raw()[5] is new
        assert q.pop_raw()[5] is old

    def test_virtual_time_is_the_step_index(self):
        q = self._queue()
        q.push_raw(5.0, EventKind.START, 0)
        q.push_raw(9.0, EventKind.START, 1)
        assert q.pop_raw()[0] == 1.0
        assert q.pop_raw()[0] == 2.0
        assert q.now == 2.0

    def test_len_bool_and_empty_pop(self):
        q = self._queue()
        assert not q and len(q) == 0
        q.push_raw(0.0, EventKind.START, 0)
        assert q and len(q) == 1
        q.pop_raw()
        with pytest.raises(SchedulingError):
            q.pop_raw()
        with pytest.raises(SchedulingError):
            q.peek_time()

    def test_event_api_delegates_to_policy_order(self):
        """The materializing push/pop API must see the policy's order,
        not the inherited heap's."""
        q = self._queue(LifoScheduler())
        q.push(0.0, EventKind.DELIVER, 1, 0, "old", 1)
        q.push(0.0, EventKind.DELIVER, 2, 0, "new", 1)
        assert q.pop().payload == "new"
        assert q.pop().payload == "old"
        with pytest.raises(SchedulingError):
            q.pop()

    def test_bogus_policy_choice_raises(self):
        class Bogus(SchedulerPolicy):
            def bind(self, seed, n):
                return None

            def choose(self, heads):
                return len(heads)  # out of range

        q = self._queue(Bogus())
        q.push_raw(0.0, EventKind.START, 0)
        with pytest.raises(SchedulingError, match="chose"):
            q.pop_raw()


class _EchoProcess(Process):
    """Start → ping every neighbor; count pings received."""

    def __init__(self, ctx):
        super().__init__(ctx)
        self.got = 0

    def on_start(self):
        for v in self.neighbors:
            self.send(v, Ping())
        self.terminated = True

    def on_message(self, sender, msg):
        self.got += 1


class TestNetworkIntegration:
    @pytest.mark.parametrize("name", [n for n in scheduler_names() if n != "none"])
    def test_every_message_is_delivered_under_every_policy(self, name):
        g = gnp_connected(8, 0.4, seed=1)
        net = Network(g, _EchoProcess, seed=0, scheduler=scheduler_from_name(name))
        report = net.run()
        assert net.in_flight == 0
        assert report.total_messages == 2 * g.m
        assert sum(p.got for p in net.processes.values()) == 2 * g.m
        # virtual time: one step per processed event
        assert report.sim_time == report.events_processed

    @pytest.mark.parametrize("name", [n for n in scheduler_names() if n != "none"])
    def test_mdst_certifies_under_every_policy(self, name):
        g = make_family("gnp_sparse", 12, seed=2)
        tree = build_spanning_tree(g, method="random", seed=2).tree
        res = run_mdst(
            g,
            tree,
            config=MDSTConfig(),
            seed=5,
            scheduler=scheduler_from_name(name),
            check_invariants=True,
        )
        assert res.final_tree.is_spanning_tree_of(g)
        assert res.final_degree <= res.initial_degree

    def test_policy_run_is_deterministic(self):
        g = make_family("gnp_sparse", 10, seed=0)
        tree = build_spanning_tree(g, method="random", seed=0).tree

        def run():
            return run_mdst(
                g,
                tree,
                seed=3,
                scheduler=scheduler_from_name("random"),
            )

        a, b = run(), run()
        assert a.final_tree.parent_map() == b.final_tree.parent_map()
        assert a.messages == b.messages
        assert a.causal_time == b.causal_time

    def test_policies_actually_change_the_schedule(self):
        """Different policies must be able to produce different runs —
        otherwise the axis explores nothing. Compared on causal shape
        over a batch of instances (any single tiny instance may
        coincide)."""
        signatures = {}
        for name in ("fifo", "lifo", "random"):
            sig = []
            for seed in range(4):
                g = make_family("gnp_sparse", 14, seed=seed)
                tree = build_spanning_tree(g, method="random", seed=seed).tree
                res = run_mdst(
                    g, tree, seed=seed, scheduler=scheduler_from_name(name)
                )
                sig.append((res.messages, res.causal_time, res.final_degree))
            signatures[name] = tuple(sig)
        assert len(set(signatures.values())) > 1, signatures
