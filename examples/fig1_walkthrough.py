#!/usr/bin/env python3
"""Figure 1 walkthrough: one edge exchange, step by step.

The paper's Figure 1 shows the root p of maximum degree, a child x whose
fragment contains an outgoing edge to another fragment; the exchange
Deletes (p, x) and Adds the outgoing edge, reducing deg(p) by one.

We reconstruct that exact situation on a small named graph, run a single
round with tracing enabled, and print the message timeline annotated with
the paper's phase names — you can watch SearchDegree, Cut, the BFS wave
(with the 'cousin' replies of Figure 2), the Choose/update exchange, and
termination happen.

Run:  python examples/fig1_walkthrough.py
"""

from repro.graphs import Graph, tree_from_edges
from repro.mdst import run_mdst
from repro.sim import TraceRecorder
from repro.viz import phase_timeline, render_tree, round_narrative

# The Figure-1 scenario: p = 0 has degree 4 (children 1..4); the subtrees
# under 1 and 2 are joined by the non-tree edge (5, 6) — the outgoing
# edge the BFS wave will discover ("cousin" edge, dashed in Figure 2).
graph = Graph(
    edges=[
        (0, 1), (0, 2), (0, 3), (0, 4),  # star at p=0
        (1, 5), (2, 6),                  # two fragments below p
        (5, 6),                          # the outgoing edge of Figure 1
    ]
)
initial = tree_from_edges(0, [(0, 1), (0, 2), (0, 3), (0, 4), (1, 5), (2, 6)])

print("initial tree (p = 0 has maximum degree 4):")
print(render_tree(initial))
print()

trace = TraceRecorder()
result = run_mdst(graph, initial, trace=trace, check_invariants=True)

print("message timeline (paper phase / src -> dst / message):")
print(phase_timeline(trace))
print()
print("per-phase message counts:")
print(round_narrative(trace))
print()

print("final tree — the exchange Deleted (0, x) and Added (5, 6):")
print(render_tree(result.final_tree))
print()
print(
    f"degree of p: {initial.max_degree()} -> "
    f"{result.final_tree.degree(0)}; tree degree "
    f"{result.initial_degree} -> {result.final_degree}"
)
assert (5, 6) in result.final_tree.edges()
