#!/usr/bin/env python3
"""Reproduce the paper in one command.

Runs every experiment preset (T1..T8 from DESIGN.md §3) at unit scale
and prints each table with its claim — the one-stop entry point for a
reader who wants the measured evidence without the pytest harness. For
larger sizes use ``python -m repro experiment t2 --scale 2`` or the full
benchmark suite (``pytest benchmarks/ --benchmark-only``).

Run:  python examples/reproduce_paper.py
"""

import time

from repro.analysis import EXPERIMENTS, run_experiment

CLAIMS = {
    "t1": "C1 — final degree ≤ Δ* + 1 (Theorem 1)",
    "t2": "C2 — O((k − k*)·m) messages (§4.2)",
    "t3": "C3 — O((k − k*)·n) time units (§4.2)",
    "t4": "C4 — k − k* + 1 rounds (§4.2)",
    "t5": "C6 — near the Korach–Moran–Zaks Ω(n²/k) bound (§1, §5)",
    "t6": "§4.2 — a better startup tree lowers the total cost",
    "t8": "quality parity with the sequential baselines (§1, [3])",
}

print("Reproducing: Blin & Butelle, 'The First Approximated Distributed")
print("Algorithm for the Minimum Degree Spanning Tree Problem on General")
print("Graphs' (IPPS 2003). One table per claim; see EXPERIMENTS.md for")
print("the full-size versions and the discussion of each shape.\n")

t_start = time.time()
for name in sorted(EXPERIMENTS):
    claim = CLAIMS.get(name, "")
    print(f"{'=' * 72}")
    print(f"[{name}] {claim}")
    print(f"{'=' * 72}")
    text, _payload = run_experiment(name)
    print(text)
    print()
print(f"all experiments reproduced in {time.time() - t_start:.1f}s")
