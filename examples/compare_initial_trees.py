#!/usr/bin/env python3
"""Initial-tree ablation (the paper's §4.2 closing remark).

"Of course we can hope to change a bit the algorithm of ST construction
in order to obtain a not so bad k."

The protocol's cost is O((k − k*)·m) messages where k is the *initial*
tree's degree — so the startup construction matters. We run the same
network through every construction in the library (distributed GHS / echo
/ token-DFS and the centralized references) and compare initial k, final
k*, rounds, and message cost.

Run:  python examples/compare_initial_trees.py
"""

from repro.analysis import Table
from repro.graphs import gnp_connected
from repro.mdst import run_mdst
from repro.spanning import build_spanning_tree

graph = gnp_connected(n=48, p=0.12, seed=21)
print(f"network: n={graph.n}, m={graph.m}")

methods = [
    ("echo (BFS-like)", "echo"),
    ("token DFS", "dfs"),
    ("GHS MST", "ghs"),
    ("centralized BFS", "bfs"),
    ("centralized DFS", "cdfs"),
    ("random tree", "random"),
    ("greedy hub (adversarial)", "greedy_hub"),
]

table = Table(
    ["construction", "k initial", "k final", "rounds", "protocol msgs",
     "startup msgs", "causal time"],
    title="Effect of the startup spanning tree (paper §4.2)",
)
for label, method in methods:
    startup = build_spanning_tree(graph, method=method, seed=21)
    result = run_mdst(graph, startup.tree, seed=21)
    table.add(
        label,
        result.initial_degree,
        result.final_degree,
        result.num_rounds,
        result.messages,
        startup.report.total_messages if startup.report else 0,
        result.causal_time,
    )
print()
print(table.render())
print()
print(
    "Reading: a lower initial k (DFS-like trees) means fewer rounds and\n"
    "fewer messages, exactly as the O((k - k*)·m) bound predicts; the\n"
    "adversarial hub tree is the worst case the complexity analysis\n"
    "charges for."
)
