#!/usr/bin/env python3
"""Assumption-free deployment: no designated root, no prebuilt tree.

The paper assumes "a spanning tree already constructed … (and) almost all
spanning tree construction algorithms give a root" (§3.1). This example
shows the complete story on a bare named network:

1. leader election + spanning tree in one shot (echo with extinction —
   every node wakes independently, smallest identity wins);
2. the MDegST protocol on top;
3. the degree trajectory across rounds.

Node identities are deliberately non-contiguous (MAC-address-like) to
exercise the minimum-identity tie-breaking honestly.

Run:  python examples/leaderless_network.py
"""

from repro.graphs import gnp_connected
from repro.mdst import run_mdst
from repro.spanning import build_spanning_tree
from repro.sim import ExponentialDelay
from repro.viz import render_trajectory

# a network with sparse random topology and scattered identities
base = gnp_connected(36, 0.14, seed=13)
graph = base.relabeled({u: 1000 + 7 * u for u in base.nodes()})
print(f"network: n={graph.n}, m={graph.m}, ids "
      f"{graph.nodes()[0]}..{graph.nodes()[-1]}")

# 1. leaderless startup under heavy-tailed delays
startup = build_spanning_tree(
    graph, method="election", delay=ExponentialDelay(), seed=13
)
print(
    f"elected root: {startup.tree.root} (smallest identity); "
    f"tree degree k={startup.degree}; "
    f"{startup.report.total_messages} election messages"
)

# 2. the protocol, also under heavy-tailed delays
result = run_mdst(graph, startup.tree, delay=ExponentialDelay(), seed=13)
print()
print(result.summary())

# 3. the k-descent
print()
print(render_trajectory(result))
