#!/usr/bin/env python3
"""Quickstart: build a network, run the distributed MDegST protocol,
inspect the result.

The pipeline mirrors the paper exactly:

1. a connected asynchronous network (here: a random geometric graph —
   the radio-network setting that motivates low-degree broadcast trees);
2. a startup spanning tree (§3.1; here the distributed echo construction);
3. the Blin–Butelle protocol, which repeatedly finds the maximum-degree
   node, cuts its children into fragments, BFS-floods the fragments for
   outgoing edges, and exchanges one edge to lower that node's degree;
4. certification against the paper's claims.

Run:  python examples/quickstart.py
"""

from repro.graphs import random_geometric
from repro.mdst import MDSTConfig, run_mdst
from repro.spanning import build_spanning_tree
from repro.verify import certify_run
from repro.viz import render_degree_histogram, render_tree

# 1. the network -----------------------------------------------------------
graph = random_geometric(n=40, radius=0.3, seed=7)
print(f"network: n={graph.n} nodes, m={graph.m} links")

# 2. startup spanning tree (distributed echo/PIF construction) -------------
startup = build_spanning_tree(graph, method="echo", seed=7)
print(
    f"startup tree: degree k={startup.degree} "
    f"({startup.report.total_messages} messages to build)"
)

# 3. the paper's protocol ---------------------------------------------------
result = run_mdst(graph, startup.tree, config=MDSTConfig(mode="concurrent"), seed=7)
print()
print(result.summary())

# 4. what did we gain? ------------------------------------------------------
print()
print("degree histogram before:")
print(render_degree_histogram(result.initial_tree))
print()
print("degree histogram after:")
print(render_degree_histogram(result.final_tree))

print()
print("final tree (top levels):")
print(render_tree(result.final_tree, max_depth=3))

# 5. certification ----------------------------------------------------------
print()
print("certification against the paper's claims:")
print(certify_run(result).summary())
