#!/usr/bin/env python3
"""Asynchrony robustness (the paper's model, §2).

The algorithm is event-driven: no timeouts, no global clock — so its
*correctness* must be independent of message delays. We run the same
instance under four delay models (unit, uniform, heavy-tailed
exponential, and adversarial fixed-per-link skew) and many schedule
seeds, then check:

* safety: every run ends in a valid spanning tree with degree ≤ initial;
* quality: the final degree is (nearly) schedule-independent;
* cost: message counts stay within the same O((k − k*)·m) envelope —
  only the wall-clock-like simulated time varies with delays.

Run:  python examples/adversarial_schedules.py
"""

from repro.analysis import Table, summarize
from repro.graphs import random_geometric
from repro.mdst import run_mdst
from repro.sim import ExponentialDelay, PerLinkDelay, UniformDelay, UnitDelay
from repro.spanning import build_spanning_tree

graph = random_geometric(n=36, radius=0.32, seed=5)
initial = build_spanning_tree(graph, method="echo", seed=5).tree
print(
    f"network: n={graph.n}, m={graph.m}; initial degree k={initial.max_degree()}"
)

models = {
    "unit (paper's analysis)": lambda: UnitDelay(),
    "uniform [0.1, 1.0]": lambda: UniformDelay(),
    "exponential (heavy tail)": lambda: ExponentialDelay(),
    "per-link adversarial": lambda: PerLinkDelay(),
}

table = Table(
    ["delay model", "final degree", "rounds", "messages", "causal time"],
    title="Same instance under different asynchronous schedules (5 seeds each)",
)
for name, make in models.items():
    finals, rounds, msgs, times = [], [], [], []
    for seed in range(5):
        res = run_mdst(graph, initial, delay=make(), seed=seed)
        assert res.final_tree.is_spanning_tree_of(graph)
        assert res.final_degree <= res.initial_degree
        finals.append(res.final_degree)
        rounds.append(res.num_rounds)
        msgs.append(res.messages)
        times.append(res.causal_time)
    table.add(
        name,
        f"{min(finals)}..{max(finals)}",
        summarize(rounds).fmt(1),
        summarize(msgs).fmt(0),
        summarize(times).fmt(0),
    )
print()
print(table.render())
print()
print(
    "Safety and quality hold under every schedule; only costs move, and\n"
    "they stay within the complexity envelope — the event-driven design\n"
    "of the paper working as intended."
)
