#!/usr/bin/env python3
"""Head-to-head comparison of the registered distributed algorithms.

The algorithm registry (``repro.algorithms``) makes "which algorithm" an
experiment axis. This example compares the paper's Blin–Butelle MDegST
protocol with the Fürer–Raghavachari-style local-improvement protocol on
identical instances, three ways:

1. one instance in detail (``run_algorithm`` on a shared startup tree);
2. a sweep with an ``algorithms`` axis (identical cells per algorithm,
   cached and parallelizable like any sweep);
3. the equivalent CLI one-liner.

Run:  python examples/compare_algorithms.py
CLI:  python -m repro compare --family geometric --n 24 --exact
"""

from repro.algorithms import algorithm_names, get_algorithm
from repro.analysis import SweepSpec, Table, run_sweep
from repro.graphs import random_geometric
from repro.sequential import optimal_degree
from repro.spanning import build_spanning_tree

# 1. one instance, both algorithms, same startup tree ----------------------
graph = random_geometric(n=24, radius=0.35, seed=11)
startup = build_spanning_tree(graph, method="echo", seed=11)
print(
    f"network: n={graph.n} m={graph.m}; startup tree degree "
    f"{startup.degree} (echo construction)"
)
print(f"exact optimum (small n): Δ* = {optimal_degree(graph)}\n")

for name in algorithm_names():
    algo = get_algorithm(name)
    result = algo.run(graph, startup.tree, seed=11)
    print(f"{name}: {algo.description}")
    print(
        f"  degree {result.initial_degree} -> {result.final_degree}"
        f" in {result.num_rounds} rounds,"
        f" {result.messages} messages, causal time {result.causal_time}"
    )

# 2. the same comparison as a sweep axis -----------------------------------
spec = SweepSpec(
    families=("geometric",),
    sizes=(16, 24),
    seeds=(0, 1, 2),
    algorithms=algorithm_names(),  # <- the new axis
)
records = run_sweep(spec)

table = Table(
    ["algorithm", "n", "seed", "k0", "k*", "rounds", "msgs"],
    title="sweep with an algorithms axis",
)
for r in records:
    table.add(r.algorithm, r.n, r.seed, r.k_initial, r.k_final, r.rounds, r.messages)
print()
print(table.render())

print(
    "\nCLI equivalents:\n"
    "  python -m repro compare --family geometric --n 24 --exact\n"
    "  python -m repro sweep --families geometric --sizes 16 24 "
    "--algorithm blin_butelle fr_local"
)
