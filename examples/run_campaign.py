"""Scenario & campaign engine walkthrough.

1. run a built-in scenario (shrunk) and print its markdown report;
2. author a custom campaign in code, dump it to TOML, load it back and
   run it — the round trip scenario files are meant for.

Run with: PYTHONPATH=src python examples/run_campaign.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.scenarios import (
    CampaignSpec,
    ScenarioSpec,
    builtin_campaign,
    dump_campaign,
    load_campaign,
    render_markdown,
    run_campaign,
    scenario_names,
    write_report,
)


def builtin_demo() -> None:
    print(f"built-in scenarios: {', '.join(scenario_names())}\n")
    campaign = builtin_campaign(["lossy_links"]).tiny()
    result = run_campaign(campaign)
    print(render_markdown(result))


def custom_campaign_demo() -> None:
    campaign = CampaignSpec(
        name="latency_study",
        description="delay-model sensitivity on two sparse regimes",
        scenarios=(
            ScenarioSpec(
                name="sparse_unit",
                description="unit-delay baseline",
                families=("gnp_sparse",),
                sizes=(12,),
                seeds=(0, 1),
            ),
            ScenarioSpec(
                name="sparse_skewed",
                description="per-link skew (adversarial schedules)",
                families=("gnp_sparse",),
                sizes=(12,),
                seeds=(0, 1),
                delays=("perlink",),
            ),
        ),
    )
    with tempfile.TemporaryDirectory() as tmp:
        doc = dump_campaign(campaign, Path(tmp) / "latency_study.toml")
        print(f"-- campaign document ({doc.name}) " + "-" * 30)
        print(doc.read_text())
        result = run_campaign(load_campaign(doc), jobs=1)
        md_path, json_path = write_report(result, Path(tmp) / "report")
        print(f"wrote {md_path.name} + {json_path.name}; markdown follows\n")
        print(md_path.read_text())


if __name__ == "__main__":
    builtin_demo()
    custom_campaign_demo()
