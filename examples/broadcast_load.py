#!/usr/bin/env python3
"""Broadcast load balancing — the paper's §1 motivation, made concrete.

"If, in such a tree, the degree of a node is large, it might cause an
undesirable communication load in that node."

We broadcast a message over three spanning trees of the same network —
the MST (GHS), the BFS tree, and the MDegST produced by the paper's
protocol — and measure the *per-node forwarding load* (number of copies a
node must transmit = its number of children). The MDegST tree trades a
little depth (latency) for a much lower maximum load.

Run:  python examples/broadcast_load.py
"""

from repro.analysis import Table
from repro.graphs import RootedTree, preferential_attachment
from repro.mdst import run_mdst
from repro.spanning import build_spanning_tree


def broadcast_stats(tree: RootedTree) -> tuple[int, float, int]:
    """(max forwarding load, mean load over internal nodes, depth)."""
    loads = [len(tree.children(u)) for u in tree.nodes()]
    internal = [x for x in loads if x > 0]
    return max(loads), sum(internal) / len(internal), tree.height()


# hub-heavy topology: exactly where degree concentration hurts
graph = preferential_attachment(n=60, k=2, seed=11)
print(f"scale-free network: n={graph.n}, m={graph.m}, "
      f"max graph degree {graph.max_degree()}")

trees: dict[str, RootedTree] = {}
trees["GHS MST"] = build_spanning_tree(graph, method="ghs").tree
trees["BFS tree"] = build_spanning_tree(graph, method="echo").tree
mdst_result = run_mdst(graph, trees["BFS tree"], seed=11)
trees["MDegST (this paper)"] = mdst_result.final_tree

table = Table(
    ["spanning tree", "max degree", "max fwd load", "mean fwd load", "depth"],
    title="Broadcast forwarding load per spanning tree",
)
for name, tree in trees.items():
    max_load, mean_load, depth = broadcast_stats(tree)
    table.add(name, tree.max_degree(), max_load, round(mean_load, 2), depth)
print()
print(table.render())

print()
print(
    f"MDegST lowered the worst node's forwarding load from "
    f"{broadcast_stats(trees['BFS tree'])[0]} (BFS) to "
    f"{broadcast_stats(trees['MDegST (this paper)'])[0]} copies,"
)
print(
    f"using {mdst_result.messages} protocol messages over "
    f"{mdst_result.num_rounds} rounds."
)
